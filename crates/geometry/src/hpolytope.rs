//! Convex polyhedra in H-representation (finite intersections of halfspaces).

use cdb_linalg::{AffineMap, Matrix, Vector};
use cdb_lp::{LpOutcome, LpProblem};

use crate::{ConstraintMatrix, Halfspace, GEOM_EPS};

/// Certificate that a convex relation is *well-bounded* in the sense of the
/// paper (Section 2): it contains a ball of radius `r_inf` and is contained
/// in a ball of radius `r_sup`, both centered at `center`.
#[derive(Clone, Debug)]
pub struct WellBounded {
    /// Center of both certificate balls (the Chebyshev center).
    pub center: Vector,
    /// Radius of the inscribed ball.
    pub r_inf: f64,
    /// Radius of the enclosing ball.
    pub r_sup: f64,
}

impl WellBounded {
    /// The "roundness" ratio `r_sup / r_inf` that controls the mixing time of
    /// the Dyer–Frieze–Kannan walk before rounding.
    pub fn aspect_ratio(&self) -> f64 {
        self.r_sup / self.r_inf
    }
}

/// A convex polyhedron `{ x ∈ R^d : a_i·x ≤ b_i }` given by its defining
/// halfspaces.
///
/// Alongside the symbolic halfspace list the polytope caches its constraint
/// matrix `A` as a structure-aware [`ConstraintMatrix`] (detected once at
/// construction: axis-aligned, CSR or dense) plus the offset vector `b`, so
/// the hot membership and chord paths of the samplers — and the LP setup —
/// never rebuild per-row buffers and automatically run the cheapest kernel
/// the structure admits.
#[derive(Clone)]
pub struct HPolytope {
    dim: usize,
    halfspaces: Vec<Halfspace>,
    /// Structure-aware constraint matrix (`n_constraints × dim`).
    matrix: ConstraintMatrix,
    /// Constraint offsets, one per halfspace.
    dense_b: Vec<f64>,
}

impl std::fmt::Debug for HPolytope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HPolytope")
            .field("dim", &self.dim)
            .field("halfspaces", &self.halfspaces)
            .finish()
    }
}

impl PartialEq for HPolytope {
    fn eq(&self, other: &Self) -> bool {
        // The dense buffers are derived data; the halfspaces are the truth.
        self.dim == other.dim && self.halfspaces == other.halfspaces
    }
}

impl HPolytope {
    /// Creates a polytope from a list of halfspaces (possibly empty, meaning
    /// the whole space). The constraint-matrix structure (axis-aligned, CSR
    /// or dense) is detected here, once.
    pub fn new(dim: usize, halfspaces: Vec<Halfspace>) -> Self {
        Self::build(dim, halfspaces, true)
    }

    /// Creates a polytope with the constraint matrix pinned to the dense
    /// representation, skipping structure detection. For throwaway or
    /// cold-path polytopes that are built once and queried a handful of
    /// times (e.g. the per-attempt fiber cylinders of the projection
    /// generator), where the detection scan and structured-storage
    /// allocations can never amortize. Long-lived bodies that get walked
    /// should use [`HPolytope::new`].
    pub fn new_dense(dim: usize, halfspaces: Vec<Halfspace>) -> Self {
        Self::build(dim, halfspaces, false)
    }

    fn build(dim: usize, halfspaces: Vec<Halfspace>, detect: bool) -> Self {
        let mut dense_a = Vec::with_capacity(halfspaces.len() * dim);
        let mut dense_b = Vec::with_capacity(halfspaces.len());
        for h in &halfspaces {
            assert_eq!(h.dim(), dim, "halfspace dimension mismatch");
            dense_a.extend_from_slice(h.normal().as_slice());
            dense_b.push(h.offset());
        }
        let matrix = if detect {
            ConstraintMatrix::detect(dense_b.len(), dim, dense_a)
        } else {
            ConstraintMatrix::dense(dense_b.len(), dim, dense_a)
        };
        HPolytope {
            dim,
            halfspaces,
            matrix,
            dense_b,
        }
    }

    /// The whole space `R^dim`.
    pub fn whole_space(dim: usize) -> Self {
        HPolytope::new(dim, Vec::new())
    }

    /// The axis-aligned box `[lo_i, hi_i]` in each coordinate.
    pub fn axis_box(lo: &[f64], hi: &[f64]) -> Self {
        assert_eq!(lo.len(), hi.len(), "box bounds dimension mismatch");
        let dim = lo.len();
        let mut hs = Vec::with_capacity(2 * dim);
        for i in 0..dim {
            hs.push(Halfspace::upper_bound(dim, i, hi[i]));
            hs.push(Halfspace::lower_bound(dim, i, lo[i]));
        }
        HPolytope::new(dim, hs)
    }

    /// The hypercube `[-half, half]^dim`.
    pub fn hypercube(dim: usize, half: f64) -> Self {
        HPolytope::axis_box(&vec![-half; dim], &vec![half; dim])
    }

    /// The standard simplex `{ x ≥ 0, Σ x_i ≤ 1 }`.
    pub fn standard_simplex(dim: usize) -> Self {
        let mut hs = Vec::with_capacity(dim + 1);
        for i in 0..dim {
            hs.push(Halfspace::lower_bound(dim, i, 0.0));
        }
        hs.push(Halfspace::from_slice(&vec![1.0; dim], 1.0));
        HPolytope::new(dim, hs)
    }

    /// The cross-polytope `{ Σ |x_i| ≤ r }` (2^dim facets — keep `dim` small).
    pub fn cross_polytope(dim: usize, r: f64) -> Self {
        let mut hs = Vec::with_capacity(1 << dim);
        for mask in 0..(1u32 << dim) {
            let normal: Vec<f64> = (0..dim)
                .map(|i| if mask >> i & 1 == 1 { -1.0 } else { 1.0 })
                .collect();
            hs.push(Halfspace::from_slice(&normal, r));
        }
        HPolytope::new(dim, hs)
    }

    /// Ambient dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The defining halfspaces.
    pub fn halfspaces(&self) -> &[Halfspace] {
        &self.halfspaces
    }

    /// Number of defining halfspaces.
    pub fn n_constraints(&self) -> usize {
        self.halfspaces.len()
    }

    /// Adds one halfspace in place, keeping the constraint-matrix cache in
    /// sync. The row is appended to the current representation in O(dim) —
    /// structure is *not* re-detected (so repeated pushes stay linear and a
    /// [`HPolytope::force_dense`] pin survives); the only representation
    /// change is the forced demotion when a multi-nonzero row lands on an
    /// axis-aligned matrix. Build via [`HPolytope::new`] to re-run
    /// detection.
    pub fn push(&mut self, h: Halfspace) {
        assert_eq!(h.dim(), self.dim, "halfspace dimension mismatch");
        self.matrix.push_row(h.normal().as_slice());
        self.dense_b.push(h.offset());
        self.halfspaces.push(h);
    }

    /// The cached structure-aware constraint matrix `A`
    /// ([`HPolytope::n_constraints`] rows over [`HPolytope::dim`] columns).
    pub fn matrix(&self) -> &ConstraintMatrix {
        &self.matrix
    }

    /// A copy of this polytope whose constraint matrix is pinned to the
    /// [`ConstraintMatrix::Dense`] representation, bypassing structure
    /// detection. The point set is identical and — because the structured
    /// kernels are bitwise-reproducible against the dense one — so is every
    /// sample drawn from it; only the per-step cost differs. Used by the
    /// perf report and the kernel-equivalence property tests.
    pub fn force_dense(&self) -> HPolytope {
        HPolytope {
            dim: self.dim,
            halfspaces: self.halfspaces.clone(),
            matrix: ConstraintMatrix::dense(
                self.dense_b.len(),
                self.dim,
                self.matrix.to_dense_data(),
            ),
            dense_b: self.dense_b.clone(),
        }
    }

    /// The cached constraint offsets `b`, one per halfspace.
    pub fn dense_b(&self) -> &[f64] {
        &self.dense_b
    }

    /// Replaces all constraint offsets `b` in place, keeping the normals and
    /// the detected constraint-matrix structure (which depends only on the
    /// normals). This turns the polytope into a parallel-translated sibling
    /// of itself in O(rows) with **zero allocations** — the workhorse of the
    /// reusable fiber templates ([`crate::fiber::FiberTemplate`]), where the
    /// same constraint system is re-aimed at a new base point per query
    /// instead of rebuilding an `HPolytope` from fresh halfspaces.
    pub fn set_offsets(&mut self, b: &[f64]) {
        assert_eq!(b.len(), self.dense_b.len(), "offset vector length mismatch");
        self.dense_b.copy_from_slice(b);
        for (h, &bi) in self.halfspaces.iter_mut().zip(b) {
            h.set_offset(bi);
        }
    }

    /// Membership test with tolerance.
    pub fn contains(&self, x: &Vector, tol: f64) -> bool {
        self.contains_slice(x.as_slice(), tol)
    }

    /// Membership test on a slice (allocation-free: one pass over the cached
    /// constraint rows through the structure-aware kernel).
    pub fn contains_slice(&self, x: &[f64], tol: f64) -> bool {
        assert_eq!(x.len(), self.dim, "membership dimension mismatch");
        self.matrix.satisfies(x, &self.dense_b, tol)
    }

    /// Intersection with another polytope over the same space.
    pub fn intersect(&self, other: &HPolytope) -> HPolytope {
        assert_eq!(self.dim, other.dim, "intersection dimension mismatch");
        let mut hs = self.halfspaces.clone();
        hs.extend(other.halfspaces.iter().cloned());
        HPolytope::new(self.dim, hs)
    }

    /// Translates the polytope by `t`.
    pub fn translate(&self, t: &Vector) -> HPolytope {
        HPolytope::new(
            self.dim,
            self.halfspaces.iter().map(|h| h.translate(t)).collect(),
        )
    }

    /// Image under an invertible affine map `y = M x + t`:
    /// `{ y : A M⁻¹ y ≤ b + A M⁻¹ t }`.
    pub fn affine_image(&self, map: &AffineMap) -> HPolytope {
        assert_eq!(map.dim(), self.dim, "affine map dimension mismatch");
        let inv = map.inverted();
        let halfspaces = self
            .halfspaces
            .iter()
            .map(|h| {
                // a·x ≤ b with x = M⁻¹(y − t)  ⇒  (M⁻ᵀ a)·y ≤ b + a·M⁻¹ t.
                let new_normal = inv.linear().transpose().mul_vector(h.normal());
                let shift = h
                    .normal()
                    .dot(&inv.linear().mul_vector(map.translation_part()));
                Halfspace::new(new_normal, h.offset() + shift)
            })
            .collect();
        HPolytope::new(self.dim, halfspaces)
    }

    /// Builds an LP over this polytope's constraints, expanding rows out of
    /// the constraint-matrix cache rather than re-walking the halfspace
    /// objects.
    fn lp(&self) -> LpProblem<f64> {
        let mut lp = LpProblem::new(self.dim);
        for (i, &b) in self.dense_b.iter().enumerate() {
            lp.add_le(self.matrix.row_to_vec(i), b);
        }
        lp
    }

    /// Returns `true` when the polytope has no point at all.
    pub fn is_empty(&self) -> bool {
        self.lp().feasible_point().is_none()
    }

    /// Any feasible point, if one exists.
    pub fn feasible_point(&self) -> Option<Vector> {
        self.lp().feasible_point().map(Vector::from)
    }

    /// The support value `max { dir·x : x ∈ P }`, or `None` when the polytope
    /// is empty or unbounded in that direction.
    pub fn support(&self, dir: &Vector) -> Option<f64> {
        match self.lp().maximize(dir.as_slice().to_vec()) {
            LpOutcome::Optimal { value, .. } => Some(value),
            _ => None,
        }
    }

    /// Chebyshev ball: the center and radius of a largest inscribed ball.
    /// Returns `None` when the polytope is empty or the radius is unbounded
    /// (the polytope contains arbitrarily large balls).
    pub fn chebyshev_ball(&self) -> Option<(Vector, f64)> {
        if self.halfspaces.is_empty() {
            return None;
        }
        // Variables (x, r): maximize r subject to a_i·x + ||a_i|| r ≤ b_i, r ≥ 0.
        let mut lp = LpProblem::new(self.dim + 1);
        let mut obj = vec![0.0; self.dim + 1];
        obj[self.dim] = 1.0;
        lp.set_objective(obj);
        for (i, h) in self.halfspaces.iter().enumerate() {
            let mut row = self.matrix.row_to_vec(i);
            row.push(h.normal_norm());
            lp.add_le(row, self.dense_b[i]);
        }
        let mut r_nonneg = vec![0.0; self.dim + 1];
        r_nonneg[self.dim] = 1.0;
        lp.add_ge(r_nonneg, 0.0);
        match lp.solve() {
            LpOutcome::Optimal { point, value } => {
                if value < 0.0 {
                    return None;
                }
                Some((Vector::from(&point[..self.dim]), value))
            }
            _ => None,
        }
    }

    /// Axis-aligned bounding box, or `None` if the polytope is empty or
    /// unbounded.
    pub fn bounding_box(&self) -> Option<(Vector, Vector)> {
        let mut lo = Vector::zeros(self.dim);
        let mut hi = Vector::zeros(self.dim);
        let lp = self.lp();
        for j in 0..self.dim {
            let mut dir = vec![0.0; self.dim];
            dir[j] = 1.0;
            match lp.maximize(dir.clone()) {
                LpOutcome::Optimal { value, .. } => hi[j] = value,
                _ => return None,
            }
            match lp.minimize(dir) {
                LpOutcome::Optimal { value, .. } => lo[j] = value,
                _ => return None,
            }
        }
        Some((lo, hi))
    }

    /// Returns `true` when the polytope is non-empty and bounded.
    pub fn is_bounded_nonempty(&self) -> bool {
        self.bounding_box().is_some()
    }

    /// Well-boundedness certificate (Section 2 of the paper): the Chebyshev
    /// center together with the inscribed radius and an enclosing radius.
    /// Returns `None` for empty, lower-dimensional or unbounded polytopes.
    pub fn well_bounded(&self) -> Option<WellBounded> {
        let bb = self.bounding_box()?;
        self.well_bounded_within(&bb)
    }

    /// Same certificate as [`HPolytope::well_bounded`], reusing an
    /// already-computed bounding box so callers that need the box anyway (the
    /// composed generators classify every component) solve the `2·dim`
    /// bounding LPs only once. Returns `None` when the polytope is
    /// lower-dimensional (Chebyshev radius below [`GEOM_EPS`]).
    pub fn well_bounded_within(&self, (lo, hi): &(Vector, Vector)) -> Option<WellBounded> {
        let (center, r_inf) = self.chebyshev_ball()?;
        if r_inf <= GEOM_EPS {
            return None;
        }
        let mut r_sup: f64 = 0.0;
        for j in 0..self.dim {
            let extent = (hi[j] - center[j]).abs().max((center[j] - lo[j]).abs());
            r_sup += extent * extent;
        }
        Some(WellBounded {
            center,
            r_inf,
            r_sup: r_sup.sqrt(),
        })
    }

    /// Enumerates the vertices of a bounded polytope by intersecting every
    /// subset of `dim` bounding hyperplanes and keeping the feasible,
    /// non-degenerate solutions. Exponential in `dim` by nature — intended
    /// for the small dimensions where exact geometry is required (Section 3
    /// of the paper and reconstruction quality measurements).
    pub fn vertices(&self) -> Vec<Vector> {
        let d = self.dim;
        let m = self.halfspaces.len();
        if m < d {
            return Vec::new();
        }
        let mut verts: Vec<Vector> = Vec::new();
        let mut combo: Vec<usize> = (0..d).collect();
        // Row buffers reused across all d-combinations.
        let mut rows: Vec<Vec<f64>> = vec![vec![0.0; d]; d];
        let mut rhs = Vector::zeros(d);
        loop {
            // Solve the d×d system formed by the selected hyperplanes.
            for (k, &i) in combo.iter().enumerate() {
                self.matrix.write_row_into(i, &mut rows[k]);
                rhs[k] = self.dense_b[i];
            }
            let a = Matrix::from_rows(&rows);
            if let Ok(x) = a.solve(&rhs) {
                if x.is_finite() && self.contains(&x, 1e-6) {
                    let is_new = verts.iter().all(|v| v.distance(&x) > 1e-6);
                    if is_new {
                        verts.push(x);
                    }
                }
            }
            // Advance to the next d-combination of {0, …, m−1}.
            let mut i = d;
            loop {
                if i == 0 {
                    return verts;
                }
                i -= 1;
                if combo[i] != i + m - d {
                    combo[i] += 1;
                    for j in (i + 1)..d {
                        combo[j] = combo[j - 1] + 1;
                    }
                    break;
                }
            }
        }
    }

    /// Removes halfspaces that are redundant (implied by the others), using
    /// one LP per constraint. Keeps the polytope's point set unchanged.
    pub fn without_redundant(&self) -> HPolytope {
        let mut kept: Vec<Halfspace> = Vec::with_capacity(self.halfspaces.len());
        for (i, h) in self.halfspaces.iter().enumerate() {
            // h is redundant iff max a·x over the other constraints is ≤ b.
            let mut lp = LpProblem::new(self.dim);
            for j in 0..self.halfspaces.len() {
                if i != j {
                    lp.add_le(self.matrix.row_to_vec(j), self.dense_b[j]);
                }
            }
            let redundant = match lp.maximize(self.matrix.row_to_vec(i)) {
                LpOutcome::Optimal { value, .. } => value <= h.offset() + GEOM_EPS,
                _ => false,
            };
            if !redundant {
                kept.push(h.clone());
            }
        }
        if kept.is_empty() && !self.halfspaces.is_empty() {
            // Everything was mutually redundant (e.g. duplicated constraints);
            // keep one to preserve the set.
            kept.push(self.halfspaces[0].clone());
        }
        HPolytope::new(self.dim, kept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_membership_and_bounds() {
        let b = HPolytope::axis_box(&[-1.0, 0.0], &[1.0, 2.0]);
        assert!(b.contains_slice(&[0.0, 1.0], 0.0));
        assert!(!b.contains_slice(&[0.0, 2.5], 1e-9));
        let (lo, hi) = b.bounding_box().unwrap();
        assert_eq!(lo.as_slice(), &[-1.0, 0.0]);
        assert_eq!(hi.as_slice(), &[1.0, 2.0]);
        assert!(b.is_bounded_nonempty());
    }

    #[test]
    fn chebyshev_ball_of_box_and_simplex() {
        let b = HPolytope::axis_box(&[0.0, 0.0], &[2.0, 4.0]);
        let (c, r) = b.chebyshev_ball().unwrap();
        assert!((r - 1.0).abs() < 1e-6);
        assert!((c[0] - 1.0).abs() < 1e-6);
        let s = HPolytope::standard_simplex(2);
        let (_, rs) = s.chebyshev_ball().unwrap();
        // Inradius of the right triangle with legs 1: (a+b-c)/2 = (2-sqrt2)/2.
        assert!((rs - (2.0 - 2f64.sqrt()) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn emptiness_detection() {
        let mut p = HPolytope::axis_box(&[0.0], &[1.0]);
        assert!(!p.is_empty());
        p.push(Halfspace::lower_bound(1, 0, 2.0));
        assert!(p.is_empty());
        assert!(p.feasible_point().is_none());
        assert!(p.well_bounded().is_none());
    }

    #[test]
    fn unbounded_polytope_has_no_bounding_box() {
        let half_plane = HPolytope::new(2, vec![Halfspace::from_slice(&[1.0, 0.0], 0.0)]);
        assert!(half_plane.bounding_box().is_none());
        assert!(half_plane.chebyshev_ball().is_none());
        assert!(!half_plane.is_empty());
        assert!(HPolytope::whole_space(2).chebyshev_ball().is_none());
    }

    #[test]
    fn vertices_of_square_and_simplex() {
        let sq = HPolytope::axis_box(&[0.0, 0.0], &[1.0, 1.0]);
        let mut vs = sq.vertices();
        assert_eq!(vs.len(), 4);
        vs.sort_by(|a, b| (a[0], a[1]).partial_cmp(&(b[0], b[1])).unwrap());
        assert!((vs[0][0] - 0.0).abs() < 1e-9 && (vs[3][1] - 1.0).abs() < 1e-9);

        let simplex = HPolytope::standard_simplex(3);
        assert_eq!(simplex.vertices().len(), 4);
    }

    #[test]
    fn cross_polytope_vertices() {
        let cp = HPolytope::cross_polytope(3, 1.0);
        let vs = cp.vertices();
        // The octahedron has 6 vertices (±e_i).
        assert_eq!(vs.len(), 6);
        for v in &vs {
            assert!((v.norm() - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn intersection_and_translation() {
        let a = HPolytope::axis_box(&[0.0, 0.0], &[2.0, 2.0]);
        let b = HPolytope::axis_box(&[1.0, 1.0], &[3.0, 3.0]);
        let i = a.intersect(&b);
        assert!(i.contains_slice(&[1.5, 1.5], 0.0));
        assert!(!i.contains_slice(&[0.5, 0.5], 1e-9));
        let t = a.translate(&Vector::from(vec![10.0, 0.0]));
        assert!(t.contains_slice(&[11.0, 1.0], 0.0));
        assert!(!t.contains_slice(&[1.0, 1.0], 1e-9));
    }

    #[test]
    fn affine_image_of_box() {
        let b = HPolytope::hypercube(2, 1.0);
        let map = AffineMap::new(
            Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 0.5]]),
            Vector::from(vec![1.0, 1.0]),
        )
        .unwrap();
        let img = b.affine_image(&map);
        // The image is [-1,3] x [0.5,1.5].
        assert!(img.contains_slice(&[2.9, 1.4], 1e-9));
        assert!(!img.contains_slice(&[3.1, 1.0], 1e-9));
        assert!(!img.contains_slice(&[0.0, 0.4], 1e-9));
        let (lo, hi) = img.bounding_box().unwrap();
        assert!((lo[0] + 1.0).abs() < 1e-6 && (hi[0] - 3.0).abs() < 1e-6);
        assert!((lo[1] - 0.5).abs() < 1e-6 && (hi[1] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn well_bounded_certificate() {
        let b = HPolytope::axis_box(&[0.0, 0.0, 0.0], &[2.0, 2.0, 2.0]);
        let wb = b.well_bounded().unwrap();
        assert!((wb.r_inf - 1.0).abs() < 1e-6);
        assert!((wb.r_sup - 3f64.sqrt()).abs() < 1e-6);
        assert!(wb.aspect_ratio() >= 1.0);
    }

    #[test]
    fn redundancy_removal() {
        let mut p = HPolytope::axis_box(&[0.0, 0.0], &[1.0, 1.0]);
        p.push(Halfspace::from_slice(&[1.0, 1.0], 10.0)); // implied by the box
        p.push(Halfspace::upper_bound(2, 0, 5.0)); // also implied
        let r = p.without_redundant();
        assert_eq!(r.n_constraints(), 4);
        // The point set is unchanged.
        for probe in [[0.5, 0.5], [1.5, 0.5], [-0.1, 0.2]] {
            assert_eq!(p.contains_slice(&probe, 0.0), r.contains_slice(&probe, 0.0));
        }
    }

    #[test]
    fn structure_detection_and_force_dense() {
        // Boxes are axis-aligned; the cross-polytope is fully dense.
        let b = HPolytope::axis_box(&vec![0.0; 8], &vec![1.0; 8]);
        assert_eq!(b.matrix().kind(), "axis");
        assert_eq!(b.matrix().rows(), 16);
        assert_eq!(b.matrix().cols(), 8);
        assert_eq!(HPolytope::cross_polytope(3, 1.0).matrix().kind(), "dense");

        // Pushing an axis row keeps the axis representation (appended in
        // place, no re-detection); a dense row demotes it. Membership and
        // geometry are unchanged either way.
        let mut cut = b.clone();
        cut.push(Halfspace::upper_bound(8, 0, 0.95));
        assert_eq!(cut.matrix().kind(), "axis");
        cut.push(Halfspace::from_slice(&vec![1.0; 8], 6.0));
        assert_eq!(cut.matrix().kind(), "dense");
        assert!(cut.contains_slice(&[0.5; 8], 0.0));
        assert!(!cut.contains_slice(&[0.9; 8], 1e-9));

        // A force_dense pin survives push.
        let mut pinned = b.force_dense();
        pinned.push(Halfspace::upper_bound(8, 1, 0.75));
        assert_eq!(pinned.matrix().kind(), "dense");
        assert!(!pinned.contains_slice(&[0.9; 8], 1e-9));

        // force_dense pins the dense kernel without touching the point set.
        let forced = b.force_dense();
        assert_eq!(forced.matrix().kind(), "dense");
        assert_eq!(forced, b);
        for probe in [[0.5; 8], [1.5; 8]] {
            assert_eq!(
                forced.contains_slice(&probe, 0.0),
                b.contains_slice(&probe, 0.0)
            );
        }
        let (lo, hi) = forced.bounding_box().unwrap();
        assert_eq!(lo.as_slice(), &[0.0; 8]);
        assert_eq!(hi.as_slice(), &[1.0; 8]);
    }

    #[test]
    fn support_function() {
        let b = HPolytope::hypercube(2, 1.0);
        assert!((b.support(&Vector::from(vec![1.0, 1.0])).unwrap() - 2.0).abs() < 1e-6);
        assert!((b.support(&Vector::from(vec![-1.0, 0.0])).unwrap() - 1.0).abs() < 1e-6);
        let half_plane = HPolytope::new(2, vec![Halfspace::from_slice(&[1.0, 0.0], 0.0)]);
        assert!(half_plane.support(&Vector::from(vec![-1.0, 0.0])).is_none());
    }
}
