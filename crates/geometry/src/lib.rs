//! Computational geometry for the spatial constraint database workspace.
//!
//! A generalized tuple of the paper (a conjunction of linear constraints) is
//! geometrically an H-polyhedron; a generalized relation is a finite union of
//! them. This crate provides the geometric substrate the symbolic and
//! sampling layers are built on:
//!
//! * [`Halfspace`] and [`HPolytope`] — H-representation polyhedra with
//!   membership tests, emptiness and boundedness certificates (via
//!   `cdb-lp`), Chebyshev balls, bounding boxes, affine images and vertex
//!   enumeration;
//! * [`ConstraintMatrix`] — the structure-aware constraint-matrix layer
//!   (dense / CSR / axis-aligned) every polytope builds at construction; the
//!   samplers' hot chord and membership kernels dispatch on it;
//! * [`hull`] — convex hulls of point clouds (monotone chain in 2D, facet
//!   enumeration in small general dimension), used by the reconstruction
//!   algorithms of Section 4.3 of the paper;
//! * [`volume`] — deterministic volume computation for convex polytopes
//!   (cone decomposition from an interior point over the facet lattice) and
//!   inclusion–exclusion volumes for unions, the fixed-dimension baseline of
//!   Section 3;
//! * [`fiber`] — reusable fiber (cylinder) templates for coordinate
//!   projections: the constraint normals of a projection fiber are fixed, so
//!   [`fiber::FiberTemplate`] re-aims one polytope at each projected point by
//!   rewriting offsets in place instead of rebuilding it;
//! * [`GammaGrid`] — the γ-grids of Definition 2.2;
//! * [`Ellipsoid`] and [`ball`] — smooth convex bodies for the polynomial
//!   extension of Section 5 and for rounding diagnostics.
//!
//! # Example
//!
//! ```
//! use cdb_geometry::HPolytope;
//!
//! // The unit square [0,1]^2.
//! let square = HPolytope::axis_box(&[0.0, 0.0], &[1.0, 1.0]);
//! assert!(square.contains_slice(&[0.5, 0.5], 1e-9));
//! assert!(!square.contains_slice(&[1.5, 0.5], 1e-9));
//! let (center, radius) = square.chebyshev_ball().unwrap();
//! assert!((radius - 0.5).abs() < 1e-6);
//! assert!((center[0] - 0.5).abs() < 1e-6);
//! assert!((cdb_geometry::volume::polytope_volume(&square) - 1.0).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ball;
mod constraint_matrix;
mod ellipsoid;
pub mod fiber;
mod grid;
mod halfspace;
mod hpolytope;
pub mod hull;
pub mod volume;

pub use constraint_matrix::ConstraintMatrix;
pub use ellipsoid::Ellipsoid;
pub use grid::GammaGrid;
pub use halfspace::Halfspace;
pub use hpolytope::{HPolytope, WellBounded};

/// Default numerical tolerance for geometric predicates.
pub const GEOM_EPS: f64 = 1e-7;
