//! γ-grids (Definition 2.2 of the paper).
//!
//! A grid of step `p` is the set of points of `R^d` whose coordinates are
//! integer multiples of `p`. The graph induced on a relation `S` has the grid
//! points inside `S` as vertices and pairs at distance `p` as edges; the
//! paper's generators walk on (or count) this graph. The step is chosen so
//! that `|V| · p^d` approximates the volume of `S` with ratio `1 + γ`.

use cdb_linalg::Vector;

/// An axis-aligned grid of step `p` in dimension `d`.
#[derive(Clone, Debug, PartialEq)]
pub struct GammaGrid {
    dim: usize,
    step: f64,
}

impl GammaGrid {
    /// Creates a grid with an explicit step.
    pub fn new(dim: usize, step: f64) -> Self {
        assert!(step > 0.0, "grid step must be positive");
        GammaGrid { dim, step }
    }

    /// The step recommended by the paper for a well-rounded body in dimension
    /// `d`: `p = Θ(γ / d^{3/2})`, scaled by the body's inner radius so that
    /// the grid resolves the inscribed ball.
    pub fn for_well_bounded(dim: usize, gamma: f64, r_inf: f64) -> Self {
        assert!(gamma > 0.0 && gamma < 1.0, "gamma must be in (0,1)");
        let step = (gamma * r_inf / (dim as f64).powf(1.5)).max(1e-9);
        GammaGrid { dim, step }
    }

    /// The ambient dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The grid step `p`.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// The volume of one grid cell, `p^d`.
    pub fn cell_volume(&self) -> f64 {
        self.step.powi(self.dim as i32)
    }

    /// Integer index of the grid point nearest to one scalar coordinate —
    /// the single place the grid's rounding convention lives (cell `i`
    /// covers `[(i − ½)p, (i + ½)p)`). The projection generator's weight
    /// cache keys through this, so grid snapping, cache cells and weight
    /// evaluation points can never diverge.
    pub fn coord_index(&self, v: f64) -> i64 {
        (v / self.step).round() as i64
    }

    /// The scalar coordinate of integer grid index `i`, the inverse of
    /// [`GammaGrid::coord_index`] on exact grid points.
    pub fn coord_at(&self, i: i64) -> f64 {
        i as f64 * self.step
    }

    /// Snaps a point to the nearest grid point.
    pub fn snap(&self, x: &Vector) -> Vector {
        assert_eq!(x.dim(), self.dim);
        Vector::from(
            x.iter()
                .map(|v| self.coord_at(self.coord_index(*v)))
                .collect::<Vec<_>>(),
        )
    }

    /// Integer coordinates of the grid point nearest to `x`.
    pub fn index_of(&self, x: &Vector) -> Vec<i64> {
        x.iter().map(|v| self.coord_index(*v)).collect()
    }

    /// The grid point with the given integer coordinates.
    pub fn point_at(&self, idx: &[i64]) -> Vector {
        assert_eq!(idx.len(), self.dim);
        Vector::from(idx.iter().map(|&i| self.coord_at(i)).collect::<Vec<_>>())
    }

    /// Returns `true` when `x` lies on the grid (up to a relative tolerance).
    pub fn is_grid_point(&self, x: &Vector, tol: f64) -> bool {
        x.iter().all(|v| {
            let r = (v / self.step).round();
            (v - r * self.step).abs() <= tol * self.step.max(1.0)
        })
    }

    /// The `2d` axis neighbors of a grid point (given by integer coordinates).
    pub fn neighbors(&self, idx: &[i64]) -> Vec<Vec<i64>> {
        let mut out = Vec::with_capacity(2 * self.dim);
        for i in 0..self.dim {
            for delta in [-1i64, 1] {
                let mut n = idx.to_vec();
                n[i] += delta;
                out.push(n);
            }
        }
        out
    }

    /// Number of grid points in the axis-aligned box `[lo, hi]` (inclusive),
    /// as a floating-point count (it can exceed `u64` in high dimension).
    pub fn count_in_box(&self, lo: &Vector, hi: &Vector) -> f64 {
        assert_eq!(lo.dim(), self.dim);
        assert_eq!(hi.dim(), self.dim);
        let mut count = 1.0;
        for i in 0..self.dim {
            let a = (lo[i] / self.step).ceil() as i64;
            let b = (hi[i] / self.step).floor() as i64;
            if b < a {
                return 0.0;
            }
            count *= (b - a + 1) as f64;
        }
        count
    }

    /// Enumerates the integer coordinates of all grid points in the box
    /// `[lo, hi]`, provided their number does not exceed `max_points`
    /// (returns `None` otherwise). Intended for the fixed-dimension
    /// algorithms of Section 3, where the count is polynomial.
    pub fn enumerate_in_box(
        &self,
        lo: &Vector,
        hi: &Vector,
        max_points: usize,
    ) -> Option<Vec<Vec<i64>>> {
        let total = self.count_in_box(lo, hi);
        if total > max_points as f64 {
            return None;
        }
        let mut ranges = Vec::with_capacity(self.dim);
        for i in 0..self.dim {
            let a = (lo[i] / self.step).ceil() as i64;
            let b = (hi[i] / self.step).floor() as i64;
            if b < a {
                return Some(Vec::new());
            }
            ranges.push((a, b));
        }
        let mut out = Vec::with_capacity(total as usize);
        let mut current: Vec<i64> = ranges.iter().map(|&(a, _)| a).collect();
        loop {
            out.push(current.clone());
            // Odometer increment.
            let mut i = 0;
            loop {
                if i == self.dim {
                    return Some(out);
                }
                current[i] += 1;
                if current[i] <= ranges[i].1 {
                    break;
                }
                current[i] = ranges[i].0;
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapping_and_indexing() {
        let g = GammaGrid::new(2, 0.5);
        let p = Vector::from(vec![1.26, -0.74]);
        let s = g.snap(&p);
        assert_eq!(s.as_slice(), &[1.5, -0.5]);
        assert_eq!(g.index_of(&p), vec![3, -1]);
        assert_eq!(g.point_at(&[3, -1]).as_slice(), &[1.5, -0.5]);
        assert!(g.is_grid_point(&s, 1e-9));
        assert!(!g.is_grid_point(&p, 1e-9));
    }

    #[test]
    fn neighbors_are_at_distance_one_step() {
        let g = GammaGrid::new(3, 0.25);
        let ns = g.neighbors(&[0, 0, 0]);
        assert_eq!(ns.len(), 6);
        for n in ns {
            let p = g.point_at(&n);
            assert!((p.norm() - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn counting_in_boxes() {
        let g = GammaGrid::new(2, 1.0);
        let lo = Vector::from(vec![0.0, 0.0]);
        let hi = Vector::from(vec![2.0, 3.0]);
        assert_eq!(g.count_in_box(&lo, &hi), 12.0); // 3 x 4 lattice points
        let empty = g.count_in_box(&Vector::from(vec![0.4, 0.0]), &Vector::from(vec![0.6, 1.0]));
        assert_eq!(empty, 0.0);
    }

    #[test]
    fn enumeration_matches_count() {
        let g = GammaGrid::new(2, 0.5);
        let lo = Vector::from(vec![-0.5, 0.0]);
        let hi = Vector::from(vec![0.5, 1.0]);
        let pts = g.enumerate_in_box(&lo, &hi, 1000).unwrap();
        assert_eq!(pts.len() as f64, g.count_in_box(&lo, &hi));
        for idx in &pts {
            let p = g.point_at(idx);
            assert!(p[0] >= -0.5 - 1e-9 && p[0] <= 0.5 + 1e-9);
            assert!(p[1] >= -1e-9 && p[1] <= 1.0 + 1e-9);
        }
        // A limit that is too small aborts the enumeration.
        assert!(g.enumerate_in_box(&lo, &hi, 2).is_none());
    }

    #[test]
    fn grid_step_respects_gamma_and_dimension() {
        let coarse = GammaGrid::for_well_bounded(2, 0.5, 1.0);
        let fine = GammaGrid::for_well_bounded(2, 0.05, 1.0);
        assert!(fine.step() < coarse.step());
        let high_dim = GammaGrid::for_well_bounded(16, 0.5, 1.0);
        assert!(high_dim.step() < coarse.step());
        // |V| p^d approximates the volume of a box: count * cell_volume close to vol.
        let g = GammaGrid::new(2, 0.01);
        let lo = Vector::from(vec![0.0, 0.0]);
        let hi = Vector::from(vec![1.0, 2.0]);
        let approx = g.count_in_box(&lo, &hi) * g.cell_volume();
        assert!((approx - 2.0).abs() / 2.0 < 0.03);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_step_rejected() {
        let _ = GammaGrid::new(2, 0.0);
    }
}
