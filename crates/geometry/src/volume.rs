//! Deterministic volume computation.
//!
//! This is the fixed-dimension baseline of Section 3 of the paper (Lemma 3.1
//! uses the Bieri–Nef sweep plane; we substitute an equivalent
//! exponential-in-`d`, polynomial-for-fixed-`d` pipeline: vertex enumeration,
//! cone decomposition from the Chebyshev center, and inclusion–exclusion over
//! the pieces of a union). It doubles as the ground truth against which the
//! randomized estimators of Section 4 are validated.

use cdb_linalg::Vector;

use crate::hull::convex_hull_volume;
use crate::HPolytope;

/// Maximum number of convex pieces accepted by the inclusion–exclusion
/// routines (the term count is `2^k − 1`).
pub const MAX_UNION_PIECES: usize = 20;

/// Volume of a bounded convex H-polytope.
///
/// The polytope's vertices are enumerated and the cone decomposition from the
/// centroid is evaluated over the defining facets. Lower-dimensional or empty
/// polytopes have volume 0. Exponential in the dimension (this is the
/// baseline the paper wants to escape from); keep `dim` small.
pub fn polytope_volume(p: &HPolytope) -> f64 {
    let verts = p.vertices();
    if verts.len() < p.dim() + 1 {
        return 0.0;
    }
    convex_hull_volume(&verts)
}

/// Volume of the intersection of two polytopes.
pub fn intersection_volume(a: &HPolytope, b: &HPolytope) -> f64 {
    polytope_volume(&a.intersect(b))
}

/// Volume of a union of convex polytopes by inclusion–exclusion:
/// `vol(∪ S_i) = Σ_{∅≠J} (−1)^{|J|+1} vol(∩_{j∈J} S_j)`.
///
/// Panics if more than [`MAX_UNION_PIECES`] pieces are supplied.
pub fn union_volume(pieces: &[HPolytope]) -> f64 {
    assert!(
        pieces.len() <= MAX_UNION_PIECES,
        "inclusion-exclusion limited to {MAX_UNION_PIECES} pieces"
    );
    if pieces.is_empty() {
        return 0.0;
    }
    let k = pieces.len();
    let mut total = 0.0;
    for mask in 1u32..(1 << k) {
        let mut inter: Option<HPolytope> = None;
        for (i, piece) in pieces.iter().enumerate() {
            if mask >> i & 1 == 1 {
                inter = Some(match inter {
                    None => piece.clone(),
                    Some(acc) => acc.intersect(piece),
                });
            }
        }
        let inter = inter.expect("mask is non-zero");
        if inter.is_empty() {
            continue;
        }
        let v = polytope_volume(&inter);
        if mask.count_ones() % 2 == 1 {
            total += v;
        } else {
            total -= v;
        }
    }
    total.max(0.0)
}

/// Volume of the intersection of two unions of convex pieces,
/// `vol((∪ A_i) ∩ (∪ B_j))`, computed as the union of all pairwise
/// intersections.
pub fn union_intersection_volume(a_pieces: &[HPolytope], b_pieces: &[HPolytope]) -> f64 {
    let mut cross: Vec<HPolytope> = Vec::new();
    for a in a_pieces {
        for b in b_pieces {
            let inter = a.intersect(b);
            if !inter.is_empty() {
                cross.push(inter);
            }
        }
    }
    if cross.is_empty() {
        return 0.0;
    }
    union_volume(&cross)
}

/// Volume of the symmetric difference between two unions of convex pieces:
/// `vol(A Δ B) = vol(A) + vol(B) − 2 vol(A ∩ B)`.
///
/// This is the error measure of the (ε,δ)-relation estimators of
/// Definition 4.1 in the paper.
pub fn symmetric_difference_volume(a_pieces: &[HPolytope], b_pieces: &[HPolytope]) -> f64 {
    let va = union_volume(a_pieces);
    let vb = union_volume(b_pieces);
    let vab = union_intersection_volume(a_pieces, b_pieces);
    (va + vb - 2.0 * vab).max(0.0)
}

/// Exact volume of an axis-aligned box given by bounds.
pub fn box_volume(lo: &Vector, hi: &Vector) -> f64 {
    assert_eq!(lo.dim(), hi.dim());
    (0..lo.dim()).map(|i| (hi[i] - lo[i]).max(0.0)).product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Halfspace;

    #[test]
    fn box_and_simplex_volumes() {
        let b = HPolytope::axis_box(&[0.0, -1.0, 2.0], &[2.0, 1.0, 5.0]);
        assert!((polytope_volume(&b) - 12.0).abs() < 1e-6);
        let s2 = HPolytope::standard_simplex(2);
        assert!((polytope_volume(&s2) - 0.5).abs() < 1e-9);
        let s3 = HPolytope::standard_simplex(3);
        assert!((polytope_volume(&s3) - 1.0 / 6.0).abs() < 1e-6);
        let s4 = HPolytope::standard_simplex(4);
        assert!((polytope_volume(&s4) - 1.0 / 24.0).abs() < 1e-6);
    }

    #[test]
    fn cross_polytope_volume() {
        // vol of the d-dimensional cross polytope of radius 1 is 2^d / d!.
        let c2 = HPolytope::cross_polytope(2, 1.0);
        assert!((polytope_volume(&c2) - 2.0).abs() < 1e-9);
        let c3 = HPolytope::cross_polytope(3, 1.0);
        assert!((polytope_volume(&c3) - 8.0 / 6.0).abs() < 1e-6);
    }

    #[test]
    fn empty_and_degenerate_polytopes() {
        let mut empty = HPolytope::axis_box(&[0.0, 0.0], &[1.0, 1.0]);
        empty.push(Halfspace::lower_bound(2, 0, 2.0));
        assert_eq!(polytope_volume(&empty), 0.0);
        // A segment in the plane (degenerate box).
        let flat = HPolytope::axis_box(&[0.0, 0.5], &[1.0, 0.5]);
        assert!(polytope_volume(&flat).abs() < 1e-9);
    }

    #[test]
    fn intersection_volume_of_overlapping_boxes() {
        let a = HPolytope::axis_box(&[0.0, 0.0], &[2.0, 2.0]);
        let b = HPolytope::axis_box(&[1.0, 1.0], &[3.0, 3.0]);
        assert!((intersection_volume(&a, &b) - 1.0).abs() < 1e-6);
        let c = HPolytope::axis_box(&[5.0, 5.0], &[6.0, 6.0]);
        assert_eq!(intersection_volume(&a, &c), 0.0);
    }

    #[test]
    fn union_volume_inclusion_exclusion() {
        let a = HPolytope::axis_box(&[0.0, 0.0], &[2.0, 2.0]);
        let b = HPolytope::axis_box(&[1.0, 1.0], &[3.0, 3.0]);
        // 4 + 4 - 1 = 7.
        assert!((union_volume(&[a.clone(), b.clone()]) - 7.0).abs() < 1e-6);
        // Adding a disjoint piece adds its volume.
        let c = HPolytope::axis_box(&[10.0, 10.0], &[11.0, 12.0]);
        assert!((union_volume(&[a.clone(), b.clone(), c]) - 9.0).abs() < 1e-6);
        // Identical pieces do not double count.
        assert!((union_volume(&[a.clone(), a.clone()]) - 4.0).abs() < 1e-6);
        assert_eq!(union_volume(&[]), 0.0);
    }

    #[test]
    fn symmetric_difference_measures() {
        let a = HPolytope::axis_box(&[0.0, 0.0], &[2.0, 1.0]);
        let b = HPolytope::axis_box(&[1.0, 0.0], &[3.0, 1.0]);
        // A Δ B = [0,1]x[0,1] ∪ [2,3]x[0,1] -> volume 2.
        assert!((symmetric_difference_volume(&[a.clone()], &[b.clone()]) - 2.0).abs() < 1e-6);
        // Identical sets have symmetric difference 0.
        assert!(symmetric_difference_volume(&[a.clone()], &[a.clone()]).abs() < 1e-6);
        // Disjoint sets: sum of the volumes.
        let far = HPolytope::axis_box(&[10.0, 0.0], &[11.0, 1.0]);
        assert!((symmetric_difference_volume(&[a], &[far]) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn union_intersection_of_unions() {
        // A = [0,2]^2, B = two strips covering x in [1,1.5] and x in [3,4].
        let a = HPolytope::axis_box(&[0.0, 0.0], &[2.0, 2.0]);
        let b1 = HPolytope::axis_box(&[1.0, 0.0], &[1.5, 2.0]);
        let b2 = HPolytope::axis_box(&[3.0, 0.0], &[4.0, 2.0]);
        let v = union_intersection_volume(&[a], &[b1, b2]);
        assert!((v - 1.0).abs() < 1e-6);
    }

    #[test]
    fn box_volume_closed_form() {
        let lo = Vector::from(vec![0.0, -1.0]);
        let hi = Vector::from(vec![2.0, 3.0]);
        assert_eq!(box_volume(&lo, &hi), 8.0);
        let inverted = Vector::from(vec![5.0, 0.0]);
        assert_eq!(box_volume(&inverted, &hi), 0.0);
    }

    #[test]
    fn rotated_simplex_volume_is_preserved() {
        // The triangle with vertices (0,0), (1,1), (-1,1) has area 1.
        let tri = HPolytope::new(
            2,
            vec![
                Halfspace::from_slice(&[1.0, -1.0], 0.0),  // x <= y
                Halfspace::from_slice(&[-1.0, -1.0], 0.0), // -x <= y
                Halfspace::upper_bound(2, 1, 1.0),         // y <= 1
            ],
        );
        assert!((polytope_volume(&tri) - 1.0).abs() < 1e-9);
    }
}
