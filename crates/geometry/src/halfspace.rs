//! Closed halfspaces `a·x ≤ b`.

use cdb_linalg::Vector;

/// A closed halfspace `{ x : normal·x ≤ offset }`.
///
/// The paper works with open halfspaces (strict inequalities); for every
/// measure-related purpose (volume, sampling, membership up to a grid step)
/// the boundary has measure zero, so the closed representation is used
/// throughout the geometric layer. The symbolic layer in `cdb-constraint`
/// keeps track of strictness where it matters (emptiness of lower-dimensional
/// sets).
#[derive(Clone, Debug, PartialEq)]
pub struct Halfspace {
    normal: Vector,
    offset: f64,
}

impl Halfspace {
    /// Creates the halfspace `normal·x ≤ offset`.
    pub fn new(normal: Vector, offset: f64) -> Self {
        Halfspace { normal, offset }
    }

    /// Creates the halfspace from slices.
    pub fn from_slice(normal: &[f64], offset: f64) -> Self {
        Halfspace {
            normal: Vector::from(normal),
            offset,
        }
    }

    /// The axis-aligned upper bound `x_i ≤ b` in dimension `dim`.
    pub fn upper_bound(dim: usize, coord: usize, b: f64) -> Self {
        Halfspace {
            normal: Vector::basis(dim, coord),
            offset: b,
        }
    }

    /// The axis-aligned lower bound `x_i ≥ b` in dimension `dim`
    /// (stored as `−x_i ≤ −b`).
    pub fn lower_bound(dim: usize, coord: usize, b: f64) -> Self {
        Halfspace {
            normal: -&Vector::basis(dim, coord),
            offset: -b,
        }
    }

    /// The outward normal `a`.
    pub fn normal(&self) -> &Vector {
        &self.normal
    }

    /// The offset `b`.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Replaces the offset `b` in place, keeping the normal. This is the
    /// cheap half of re-aiming a halfspace at a parallel translate — the
    /// fiber templates of [`crate::fiber`] rewrite only the offsets of an
    /// otherwise fixed constraint system for every new base point.
    pub fn set_offset(&mut self, b: f64) {
        self.offset = b;
    }

    /// The ambient dimension.
    pub fn dim(&self) -> usize {
        self.normal.dim()
    }

    /// Signed slack `offset − normal·x`: non-negative inside, negative outside.
    pub fn slack(&self, x: &Vector) -> f64 {
        self.offset - self.normal.dot(x)
    }

    /// Membership test with tolerance.
    pub fn contains(&self, x: &Vector, tol: f64) -> bool {
        self.slack(x) >= -tol
    }

    /// Euclidean norm of the normal vector.
    pub fn normal_norm(&self) -> f64 {
        self.normal.norm()
    }

    /// Signed Euclidean distance from `x` to the bounding hyperplane
    /// (positive inside the halfspace). Returns `None` for a degenerate
    /// (zero-normal) halfspace.
    pub fn signed_distance(&self, x: &Vector) -> Option<f64> {
        let n = self.normal_norm();
        if n < 1e-300 {
            None
        } else {
            Some(self.slack(x) / n)
        }
    }

    /// Returns a scaled copy with a unit normal (`None` if the normal is zero).
    pub fn normalized(&self) -> Option<Halfspace> {
        let n = self.normal_norm();
        if n < 1e-300 {
            None
        } else {
            Some(Halfspace {
                normal: self.normal.scale(1.0 / n),
                offset: self.offset / n,
            })
        }
    }

    /// The complementary halfspace `normal·x ≥ offset`, i.e. `−normal·x ≤ −offset`.
    pub fn complement(&self) -> Halfspace {
        Halfspace {
            normal: -&self.normal,
            offset: -self.offset,
        }
    }

    /// Translates the halfspace by `t` (the set moves by `t`).
    pub fn translate(&self, t: &Vector) -> Halfspace {
        Halfspace {
            normal: self.normal.clone(),
            offset: self.offset + self.normal.dot(t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership_and_slack() {
        let h = Halfspace::from_slice(&[1.0, 1.0], 1.0);
        assert!(h.contains(&Vector::from(vec![0.2, 0.3]), 1e-9));
        assert!(!h.contains(&Vector::from(vec![0.8, 0.8]), 1e-9));
        assert!((h.slack(&Vector::from(vec![0.25, 0.25])) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn axis_bounds() {
        let up = Halfspace::upper_bound(3, 1, 2.0);
        let lo = Halfspace::lower_bound(3, 1, -1.0);
        let p = Vector::from(vec![100.0, 0.5, -100.0]);
        assert!(up.contains(&p, 0.0));
        assert!(lo.contains(&p, 0.0));
        let q = Vector::from(vec![0.0, -2.0, 0.0]);
        assert!(!lo.contains(&q, 0.0));
    }

    #[test]
    fn signed_distance_and_normalization() {
        let h = Halfspace::from_slice(&[3.0, 4.0], 5.0);
        let origin = Vector::zeros(2);
        assert!((h.signed_distance(&origin).unwrap() - 1.0).abs() < 1e-12);
        let n = h.normalized().unwrap();
        assert!((n.normal_norm() - 1.0).abs() < 1e-12);
        assert!((n.offset() - 1.0).abs() < 1e-12);
        let degenerate = Halfspace::from_slice(&[0.0, 0.0], 1.0);
        assert!(degenerate.signed_distance(&origin).is_none());
        assert!(degenerate.normalized().is_none());
    }

    #[test]
    fn complement_flips_membership() {
        let h = Halfspace::from_slice(&[1.0], 0.0);
        let c = h.complement();
        let inside = Vector::from(vec![-1.0]);
        let outside = Vector::from(vec![1.0]);
        assert!(
            h.contains(&inside, 0.0) && !h.contains(&outside, 1e-9) == c.contains(&outside, 0.0)
        );
    }

    #[test]
    fn translation_moves_the_set() {
        let h = Halfspace::from_slice(&[1.0, 0.0], 1.0);
        let t = Vector::from(vec![2.0, 0.0]);
        let moved = h.translate(&t);
        assert!(moved.contains(&Vector::from(vec![2.5, 0.0]), 0.0));
        assert!(!moved.contains(&Vector::from(vec![3.5, 0.0]), 1e-9));
    }
}
