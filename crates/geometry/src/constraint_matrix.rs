//! Structure-aware constraint matrices.
//!
//! The walk engine spends almost all of its time in one place: the `A·dir`
//! product of the incremental chord protocol, where `A` is the constraint
//! matrix of an H-polytope. The paper's motivating workloads are mostly
//! *structured* — GIS parcel overlays are intersections of axis-aligned
//! boxes (one nonzero per row) and SAT-style encodings produce rows with a
//! handful of nonzeros — so a dense row-major product does up to `d×` the
//! necessary work on them.
//!
//! [`ConstraintMatrix`] stores the matrix in one of three representations,
//! chosen automatically by [`ConstraintMatrix::detect`] at
//! [`crate::HPolytope`] construction:
//!
//! * [`ConstraintMatrix::Dense`] — the row-major flat buffer, reduced with
//!   the 4-wide unrolled [`kernels::dot`];
//! * [`ConstraintMatrix::Sparse`] — CSR, for systems whose rows carry few
//!   nonzeros (banded overlays, SAT-style rows);
//! * [`ConstraintMatrix::AxisAligned`] — one `(axis, coefficient)` pair per
//!   row, for box/interval constraints: the chord becomes O(rows) interval
//!   clipping with no matrix–vector product at all.
//!
//! Every structured kernel is **bitwise identical** to the dense path (see
//! the reproducibility notes in [`kernels`]), so the representation is purely
//! a performance choice: samplers, tests and pinned RNG streams observe the
//! exact same numbers whichever variant is active.

use cdb_linalg::kernels;

/// Rows whose density (`nnz / (rows·cols)`) is at or below this threshold
/// are stored as CSR; denser systems keep the flat row-major buffer, whose
/// unrolled kernel wins once most entries are touched anyway.
const SPARSE_DENSITY_THRESHOLD: f64 = 0.25;

/// Sparse storage only pays off when skipping zeros saves real work; below
/// this column count the dense row fits in a cache line or two and the
/// branchless unrolled kernel is faster than any gather.
const SPARSE_MIN_COLS: usize = 8;

/// A constraint matrix in one of three structure-aware representations.
///
/// All variants describe the same logical `rows × cols` real matrix and all
/// operations produce bitwise-identical results across variants; see the
/// module docs for when each is chosen.
#[derive(Clone, Debug, PartialEq)]
pub enum ConstraintMatrix {
    /// Row-major flat buffer (`data.len() == rows · cols`).
    Dense {
        /// Number of rows.
        rows: usize,
        /// Number of columns (the ambient dimension).
        cols: usize,
        /// Row-major entries.
        data: Vec<f64>,
    },
    /// Compressed sparse rows: row `i` owns `cols_idx/vals[row_ptr[i]..row_ptr[i+1]]`.
    ///
    /// Entries within a row are stored in **class-major order**: the dense
    /// reduction of [`kernels::dot`] accumulates column `c` into accumulator
    /// class `c % 4` inside the 4-aligned prefix (and a tail accumulator past
    /// it), so the row stores its class-0 entries first (columns ascending),
    /// then classes 1, 2, 3, then the tail, with the four relative segment
    /// ends in `class_ptr`. This lets the `nnz ≥ 4` kernel
    /// ([`kernels::sparse_row_dot_classed`]) reduce contiguous segments
    /// without recomputing each entry's class, while staying bitwise equal to
    /// the dense reduction.
    Sparse {
        /// Number of rows.
        rows: usize,
        /// Number of columns (the ambient dimension).
        cols: usize,
        /// `rows + 1` offsets into `col_idx`/`vals`.
        row_ptr: Vec<usize>,
        /// Column index of each stored entry (class-major within a row).
        col_idx: Vec<u32>,
        /// Value of each stored entry (never `0.0`).
        vals: Vec<f64>,
        /// Four relative segment ends per row (ends of classes 0–3; the tail
        /// runs to the row end), `4 · rows` entries.
        class_ptr: Vec<u32>,
    },
    /// At most one nonzero per row: row `i` is `coeffs[i] · x[axes[i]]`.
    /// A zero row is stored as `(axis 0, coefficient 0.0)`.
    AxisAligned {
        /// Number of columns (the ambient dimension).
        cols: usize,
        /// Column of each row's nonzero.
        axes: Vec<u32>,
        /// Coefficient of each row's nonzero (sign encodes upper/lower bound).
        coeffs: Vec<f64>,
    },
}

/// Appends the nonzeros of one dense row in class-major order (see the
/// [`ConstraintMatrix::Sparse`] docs) and records the four relative segment
/// ends in `class_ptr`.
fn push_class_major_row(
    row: &[f64],
    col_idx: &mut Vec<u32>,
    vals: &mut Vec<f64>,
    class_ptr: &mut Vec<u32>,
) {
    let n4 = row.len() - row.len() % 4;
    let start = col_idx.len();
    for class in 0..4usize {
        for j in (class..n4).step_by(4) {
            if row[j] != 0.0 {
                col_idx.push(j as u32);
                vals.push(row[j]);
            }
        }
        class_ptr.push((col_idx.len() - start) as u32);
    }
    for (j, &v) in row.iter().enumerate().skip(n4) {
        if v != 0.0 {
            col_idx.push(j as u32);
            vals.push(v);
        }
    }
}

/// Reduces one class-major CSR row against `x`: rows with at most three
/// nonzeros take the order-insensitive shortcut arms of
/// [`kernels::sparse_row_dot`]; longer rows run the segment reduction of
/// [`kernels::sparse_row_dot_classed`], whose per-entry class is implied by
/// position instead of recomputed.
#[inline]
fn sparse_row_reduce(
    row_ptr: &[usize],
    col_idx: &[u32],
    vals: &[f64],
    class_ptr: &[u32],
    i: usize,
    x: &[f64],
) -> f64 {
    let (lo, hi) = (row_ptr[i], row_ptr[i + 1]);
    let cols = &col_idx[lo..hi];
    let v = &vals[lo..hi];
    if cols.len() <= 3 {
        kernels::sparse_row_dot(cols, v, x)
    } else {
        let seg: &[u32; 4] = class_ptr[4 * i..4 * i + 4]
            .try_into()
            .expect("class_ptr holds four segment ends per row");
        kernels::sparse_row_dot_classed(cols, v, seg, x)
    }
}

impl ConstraintMatrix {
    /// Wraps a row-major flat buffer without structure detection — the
    /// "force the dense kernel" entry point used by benchmarks and the
    /// bitwise-equality property tests.
    pub fn dense(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "dense buffer length mismatch");
        ConstraintMatrix::Dense { rows, cols, data }
    }

    /// Appends one dense row in place, in O(`cols`), without re-running
    /// structure detection: the row joins the *current* representation when
    /// it fits (any row fits `Dense` or `Sparse`; a ≤ 1-nonzero row fits
    /// `AxisAligned`), and only a multi-nonzero row pushed onto an
    /// axis-aligned matrix demotes the whole matrix to dense (one O(rows ×
    /// cols) expansion at the moment of demotion). Detection therefore
    /// happens once, at [`ConstraintMatrix::detect`] time — incremental
    /// construction stays linear, and a matrix pinned by
    /// [`ConstraintMatrix::dense`] (see `HPolytope::force_dense`) stays
    /// pinned. Rebuild through `detect` to re-run detection from scratch.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols(), "pushed row length mismatch");
        match self {
            ConstraintMatrix::Dense { rows, data, .. } => {
                data.extend_from_slice(row);
                *rows += 1;
            }
            ConstraintMatrix::Sparse {
                rows,
                row_ptr,
                col_idx,
                vals,
                class_ptr,
                ..
            } => {
                push_class_major_row(row, col_idx, vals, class_ptr);
                row_ptr.push(col_idx.len());
                *rows += 1;
            }
            ConstraintMatrix::AxisAligned { axes, coeffs, .. } => {
                let mut nonzeros = row.iter().enumerate().filter(|(_, &v)| v != 0.0);
                match (nonzeros.next(), nonzeros.next()) {
                    (first, None) => {
                        let (axis, coeff) = first.map_or((0, 0.0), |(j, &v)| (j as u32, v));
                        axes.push(axis);
                        coeffs.push(coeff);
                    }
                    _ => {
                        // The row breaks the axis structure: demote to dense.
                        let rows = axes.len();
                        let cols = row.len();
                        let mut data = self.to_dense_data();
                        data.extend_from_slice(row);
                        *self = ConstraintMatrix::Dense {
                            rows: rows + 1,
                            cols,
                            data,
                        };
                    }
                }
            }
        }
    }

    /// Detects the structure of a row-major flat buffer and builds the
    /// cheapest representation that can host it: axis-aligned when every row
    /// has at most one nonzero, CSR when the density is at most
    /// `SPARSE_DENSITY_THRESHOLD` (and there are at least `SPARSE_MIN_COLS`
    /// columns, so skipping zeros pays for the CSR bookkeeping), dense
    /// otherwise.
    pub fn detect(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "dense buffer length mismatch");
        if cols == 0 {
            return ConstraintMatrix::Dense { rows, cols, data };
        }
        if rows == 0 {
            // A zero-row matrix vacuously satisfies the axis invariant.
            // Starting axis-aligned matters for incremental construction:
            // `push_row` never re-detects, so a polytope grown from empty by
            // pushing interval bounds keeps the O(rows) axis kernel instead
            // of being pinned dense forever.
            return ConstraintMatrix::AxisAligned {
                cols,
                axes: Vec::new(),
                coeffs: Vec::new(),
            };
        }
        let mut nnz = 0usize;
        let mut axis_aligned = true;
        for row in data.chunks_exact(cols) {
            let row_nnz = row.iter().filter(|&&v| v != 0.0).count();
            nnz += row_nnz;
            if row_nnz > 1 {
                axis_aligned = false;
            }
        }
        if axis_aligned {
            let mut axes = Vec::with_capacity(rows);
            let mut coeffs = Vec::with_capacity(rows);
            for row in data.chunks_exact(cols) {
                match row.iter().position(|&v| v != 0.0) {
                    Some(j) => {
                        axes.push(j as u32);
                        coeffs.push(row[j]);
                    }
                    None => {
                        axes.push(0);
                        coeffs.push(0.0);
                    }
                }
            }
            return ConstraintMatrix::AxisAligned { cols, axes, coeffs };
        }
        let density = nnz as f64 / (rows * cols) as f64;
        if cols >= SPARSE_MIN_COLS && density <= SPARSE_DENSITY_THRESHOLD {
            let mut row_ptr = Vec::with_capacity(rows + 1);
            let mut col_idx = Vec::with_capacity(nnz);
            let mut vals = Vec::with_capacity(nnz);
            let mut class_ptr = Vec::with_capacity(4 * rows);
            row_ptr.push(0);
            for row in data.chunks_exact(cols) {
                push_class_major_row(row, &mut col_idx, &mut vals, &mut class_ptr);
                row_ptr.push(col_idx.len());
            }
            return ConstraintMatrix::Sparse {
                rows,
                cols,
                row_ptr,
                col_idx,
                vals,
                class_ptr,
            };
        }
        ConstraintMatrix::Dense { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        match self {
            ConstraintMatrix::Dense { rows, .. } | ConstraintMatrix::Sparse { rows, .. } => *rows,
            ConstraintMatrix::AxisAligned { axes, .. } => axes.len(),
        }
    }

    /// Number of columns (the ambient dimension).
    pub fn cols(&self) -> usize {
        match self {
            ConstraintMatrix::Dense { cols, .. }
            | ConstraintMatrix::Sparse { cols, .. }
            | ConstraintMatrix::AxisAligned { cols, .. } => *cols,
        }
    }

    /// Number of stored nonzeros (dense counts its actual nonzero entries).
    pub fn nnz(&self) -> usize {
        match self {
            ConstraintMatrix::Dense { data, .. } => data.iter().filter(|&&v| v != 0.0).count(),
            ConstraintMatrix::Sparse { vals, .. } => vals.len(),
            ConstraintMatrix::AxisAligned { coeffs, .. } => {
                coeffs.iter().filter(|&&v| v != 0.0).count()
            }
        }
    }

    /// A short name for the active representation — used by diagnostics and
    /// the perf report (`"dense"`, `"sparse"`, `"axis"`).
    pub fn kind(&self) -> &'static str {
        match self {
            ConstraintMatrix::Dense { .. } => "dense",
            ConstraintMatrix::Sparse { .. } => "sparse",
            ConstraintMatrix::AxisAligned { .. } => "axis",
        }
    }

    /// Matrix–vector product `out ← A·x` through the representation's
    /// specialized kernel. `x.len() == cols`, `out.len() == rows`; never
    /// allocates.
    pub fn mat_vec_into(&self, x: &[f64], out: &mut [f64]) {
        debug_assert_eq!(x.len(), self.cols(), "mat_vec input length mismatch");
        assert_eq!(out.len(), self.rows(), "mat_vec output length mismatch");
        match self {
            ConstraintMatrix::Dense { rows, data, .. } => {
                kernels::mat_vec_into(data, *rows, x, out);
            }
            ConstraintMatrix::Sparse {
                row_ptr,
                col_idx,
                vals,
                class_ptr,
                ..
            } => {
                for (i, o) in out.iter_mut().enumerate() {
                    *o = sparse_row_reduce(row_ptr, col_idx, vals, class_ptr, i, x);
                }
            }
            ConstraintMatrix::AxisAligned { axes, coeffs, .. } => {
                kernels::axis_mat_vec_into(axes, coeffs, x, out);
            }
        }
    }

    /// Dot product of row `i` with `x`, through the specialized kernel.
    pub fn row_dot(&self, i: usize, x: &[f64]) -> f64 {
        match self {
            ConstraintMatrix::Dense { cols, data, .. } => {
                kernels::dot(&data[i * cols..(i + 1) * cols], x)
            }
            ConstraintMatrix::Sparse {
                row_ptr,
                col_idx,
                vals,
                class_ptr,
                ..
            } => sparse_row_reduce(row_ptr, col_idx, vals, class_ptr, i, x),
            ConstraintMatrix::AxisAligned { axes, coeffs, .. } => {
                coeffs[i] * x[axes[i] as usize] + 0.0
            }
        }
    }

    /// The row-wise membership test `A·x ≤ b + tol`, with the representation
    /// match hoisted out of the per-row loop (one dispatch per call, not per
    /// row — this is the cold-path sibling of the incremental walk state's
    /// sign check). Never allocates.
    pub fn satisfies(&self, x: &[f64], b: &[f64], tol: f64) -> bool {
        debug_assert_eq!(x.len(), self.cols(), "membership input length mismatch");
        assert_eq!(b.len(), self.rows(), "offset vector length mismatch");
        match self {
            ConstraintMatrix::Dense { cols: 0, .. } => b.iter().all(|&bi| 0.0 <= bi + tol),
            ConstraintMatrix::Dense { cols, data, .. } => data
                .chunks_exact(*cols)
                .zip(b)
                .all(|(row, &bi)| kernels::dot(row, x) <= bi + tol),
            ConstraintMatrix::Sparse {
                row_ptr,
                col_idx,
                vals,
                class_ptr,
                ..
            } => b.iter().enumerate().all(|(i, &bi)| {
                sparse_row_reduce(row_ptr, col_idx, vals, class_ptr, i, x) <= bi + tol
            }),
            ConstraintMatrix::AxisAligned { axes, coeffs, .. } => axes
                .iter()
                .zip(coeffs)
                .zip(b)
                .all(|((&a, &c), &bi)| c * x[a as usize] <= bi + tol),
        }
    }

    /// Residual update `out ← b − A·x` (the incremental walk state of the
    /// polytope oracle), fused over the structured product. Never allocates.
    pub fn residuals_into(&self, x: &[f64], b: &[f64], out: &mut [f64]) {
        assert_eq!(b.len(), self.rows(), "offset vector length mismatch");
        self.mat_vec_into(x, out);
        for (o, &bi) in out.iter_mut().zip(b) {
            *o = bi - *o;
        }
    }

    /// Writes row `i` densely into `out` (`out.len() == cols`), zero-filling
    /// the gaps — the bridge for the cold LP/vertex-enumeration paths that
    /// genuinely need dense rows.
    pub fn write_row_into(&self, i: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.cols(), "dense row buffer length mismatch");
        match self {
            ConstraintMatrix::Dense { cols, data, .. } => {
                out.copy_from_slice(&data[i * cols..(i + 1) * cols]);
            }
            ConstraintMatrix::Sparse {
                row_ptr,
                col_idx,
                vals,
                ..
            } => {
                out.fill(0.0);
                for k in row_ptr[i]..row_ptr[i + 1] {
                    out[col_idx[k] as usize] = vals[k];
                }
            }
            ConstraintMatrix::AxisAligned { axes, coeffs, .. } => {
                out.fill(0.0);
                if coeffs[i] != 0.0 {
                    out[axes[i] as usize] = coeffs[i];
                }
            }
        }
    }

    /// Row `i` as a freshly allocated dense vector (cold paths only).
    pub fn row_to_vec(&self, i: usize) -> Vec<f64> {
        let mut row = vec![0.0; self.cols()];
        self.write_row_into(i, &mut row);
        row
    }

    /// The whole matrix as a row-major flat buffer (cold paths only).
    pub fn to_dense_data(&self) -> Vec<f64> {
        match self {
            ConstraintMatrix::Dense { data, .. } => data.clone(),
            _ => {
                let (rows, cols) = (self.rows(), self.cols());
                let mut data = vec![0.0; rows * cols];
                for i in 0..rows {
                    self.write_row_into(i, &mut data[i * cols..(i + 1) * cols]);
                }
                data
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_rows(rows: &[&[f64]]) -> (usize, usize, Vec<f64>) {
        let cols = rows[0].len();
        let mut data = Vec::new();
        for r in rows {
            assert_eq!(r.len(), cols);
            data.extend_from_slice(r);
        }
        (rows.len(), cols, data)
    }

    #[test]
    fn detection_picks_the_cheapest_variant() {
        // A 2D box: every row has one nonzero.
        let (r, c, data) = dense_rows(&[&[1.0, 0.0], &[-1.0, 0.0], &[0.0, 1.0], &[0.0, -1.0]]);
        assert_eq!(ConstraintMatrix::detect(r, c, data).kind(), "axis");

        // A banded 8-column system with 2 nonzeros per row: sparse.
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for i in 0..7usize {
            let mut row = vec![0.0; 8];
            row[i] = 1.0;
            row[i + 1] = -1.0;
            rows.push(row);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let (r, c, data) = dense_rows(&refs);
        assert_eq!(ConstraintMatrix::detect(r, c, data).kind(), "sparse");

        // A fully dense system stays dense.
        let (r, c, data) = dense_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(ConstraintMatrix::detect(r, c, data).kind(), "dense");

        // Few columns: even sparse-ish systems stay dense (kernel overhead).
        let (r, c, data) = dense_rows(&[&[1.0, 1.0, 0.0], &[0.0, 1.0, 1.0]]);
        assert_eq!(ConstraintMatrix::detect(r, c, data).kind(), "dense");
    }

    #[test]
    fn all_variants_agree_bitwise() {
        // A mixed system with axis rows, short rows and a dense-ish row.
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for i in 0..10usize {
            let mut row = vec![0.0; 10];
            row[i] = if i % 2 == 0 { 1.0 } else { -2.5 };
            if i % 3 == 0 {
                row[(i + 5) % 10] = 0.75;
            }
            rows.push(row);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let (r, c, data) = dense_rows(&refs);
        let detected = ConstraintMatrix::detect(r, c, data.clone());
        assert_eq!(detected.kind(), "sparse");
        let dense = ConstraintMatrix::dense(r, c, data);

        let x: Vec<f64> = (0..c).map(|i| (i as f64 - 4.5) * 0.3).collect();
        let mut out_s = vec![0.0; r];
        let mut out_d = vec![0.0; r];
        detected.mat_vec_into(&x, &mut out_s);
        dense.mat_vec_into(&x, &mut out_d);
        for (s, d) in out_s.iter().zip(&out_d) {
            assert_eq!(s.to_bits(), d.to_bits());
        }
        for i in 0..r {
            assert_eq!(
                detected.row_dot(i, &x).to_bits(),
                dense.row_dot(i, &x).to_bits()
            );
            assert_eq!(detected.row_to_vec(i), dense.row_to_vec(i));
        }
        assert_eq!(detected.to_dense_data(), dense.to_dense_data());
        assert_eq!(detected.nnz(), dense.nnz());
    }

    #[test]
    fn incremental_construction_from_empty_keeps_the_axis_kernel() {
        // detect() on zero rows starts axis-aligned, so a box grown by
        // push_row ends up on the O(rows) kernel, not pinned dense.
        let mut m = ConstraintMatrix::detect(0, 4, Vec::new());
        assert_eq!((m.kind(), m.rows(), m.cols()), ("axis", 0, 4));
        for coord in 0..4u32 {
            let mut lo = vec![0.0; 4];
            lo[coord as usize] = -1.0;
            m.push_row(&lo);
            let mut hi = vec![0.0; 4];
            hi[coord as usize] = 1.0;
            m.push_row(&hi);
        }
        assert_eq!((m.kind(), m.rows(), m.nnz()), ("axis", 8, 8));
        // Zero columns stay dense (nothing to index an axis into).
        assert_eq!(ConstraintMatrix::detect(0, 0, Vec::new()).kind(), "dense");
    }

    #[test]
    fn push_row_appends_in_place_and_demotes_only_when_forced() {
        // Axis + axis row stays axis; axis + dense row demotes to dense.
        let (r, c, data) = dense_rows(&[&[1.0, 0.0], &[0.0, -1.0]]);
        let mut m = ConstraintMatrix::detect(r, c, data.clone());
        assert_eq!(m.kind(), "axis");
        m.push_row(&[0.0, 2.0]);
        assert_eq!((m.kind(), m.rows()), ("axis", 3));
        m.push_row(&[1.0, 1.0]);
        assert_eq!((m.kind(), m.rows()), ("dense", 4));
        assert_eq!(m.row_to_vec(1), vec![0.0, -1.0]);
        assert_eq!(m.row_to_vec(3), vec![1.0, 1.0]);

        // A pinned dense matrix stays dense whatever the row looks like.
        let mut pinned = ConstraintMatrix::dense(r, c, data);
        pinned.push_row(&[0.0, 3.0]);
        assert_eq!((pinned.kind(), pinned.rows()), ("dense", 3));

        // Sparse accepts any row in place.
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for i in 0..8usize {
            let mut row = vec![0.0; 8];
            row[i] = 1.0;
            row[(i + 1) % 8] = -1.0;
            rows.push(row);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let (r, c, data) = dense_rows(&refs);
        let mut m = ConstraintMatrix::detect(r, c, data);
        assert_eq!(m.kind(), "sparse");
        m.push_row(&[0.0, 0.5, 0.0, 0.0, -0.5, 0.0, 0.0, 0.25]);
        assert_eq!((m.kind(), m.rows(), m.nnz()), ("sparse", 9, 19));
        assert_eq!(
            m.row_to_vec(8),
            vec![0.0, 0.5, 0.0, 0.0, -0.5, 0.0, 0.0, 0.25]
        );
    }

    /// Class-major invariant: within a row, entries appear as class-0 columns
    /// ascending, then classes 1–3, then the tail, with `class_ptr` marking
    /// the segment ends — whether the row came from `detect` or `push_row`.
    #[test]
    fn sparse_rows_are_class_major() {
        let cols_total = 16usize;
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for i in 0..6usize {
            let mut row = vec![0.0; cols_total];
            for k in 0..4 {
                row[(i + 3 * k) % cols_total] = 1.0 + i as f64 + k as f64;
            }
            rows.push(row);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let (r, c, data) = dense_rows(&refs);
        let mut m = ConstraintMatrix::detect(r, c, data);
        assert_eq!(m.kind(), "sparse");
        // Push one more ≥ 4-nonzero row through the incremental path.
        let mut pushed = vec![0.0; cols_total];
        for (k, slot) in [0usize, 2, 4, 6, 8, 13, 15].iter().enumerate() {
            pushed[*slot] = 0.5 + k as f64;
        }
        m.push_row(&pushed);
        let ConstraintMatrix::Sparse {
            rows,
            cols,
            row_ptr,
            col_idx,
            class_ptr,
            ..
        } = &m
        else {
            panic!("expected the sparse representation");
        };
        assert_eq!(class_ptr.len(), 4 * rows);
        let n4 = cols - cols % 4;
        for i in 0..*rows {
            let (lo, hi) = (row_ptr[i], row_ptr[i + 1]);
            let row_cols = &col_idx[lo..hi];
            let seg = &class_ptr[4 * i..4 * i + 4];
            let class_of = |c: u32| -> usize {
                if (c as usize) < n4 {
                    (c % 4) as usize
                } else {
                    4
                }
            };
            let mut bounds = vec![0usize];
            bounds.extend(seg.iter().map(|&e| e as usize));
            bounds.push(row_cols.len());
            for class in 0..5usize {
                let segment = &row_cols[bounds[class]..bounds[class + 1]];
                for w in segment.windows(2) {
                    assert!(w[0] < w[1], "columns not ascending within a class");
                }
                for &c in segment {
                    assert_eq!(class_of(c), class, "entry stored in the wrong class");
                }
            }
        }
        // The reordering is invisible to every dense bridge.
        let x: Vec<f64> = (0..c).map(|i| 0.4 * i as f64 - 1.1).collect();
        let dense = ConstraintMatrix::dense(m.rows(), c, m.to_dense_data());
        for i in 0..m.rows() {
            assert_eq!(
                m.row_dot(i, &x).to_bits(),
                dense.row_dot(i, &x).to_bits(),
                "row {i} reduction is not bitwise dense"
            );
        }
    }

    #[test]
    fn residuals_match_the_definition() {
        let (r, c, data) = dense_rows(&[&[1.0, 0.0], &[0.0, -1.0]]);
        let m = ConstraintMatrix::detect(r, c, data);
        assert_eq!(m.kind(), "axis");
        let mut out = vec![0.0; 2];
        m.residuals_into(&[0.25, 0.5], &[1.0, 0.0], &mut out);
        assert_eq!(out, vec![0.75, 0.5]);
    }

    #[test]
    fn zero_rows_are_representable_everywhere() {
        let (r, c, data) = dense_rows(&[&[0.0, 0.0], &[0.0, 2.0]]);
        let m = ConstraintMatrix::detect(r, c, data);
        assert_eq!(m.kind(), "axis");
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.row_dot(0, &[3.0, 4.0]), 0.0);
        assert_eq!(m.row_to_vec(0), vec![0.0, 0.0]);
        assert_eq!(m.row_dot(1, &[3.0, 4.0]), 8.0);
    }
}
