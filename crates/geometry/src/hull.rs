//! Convex hulls of finite point sets.
//!
//! Used by the reconstruction algorithms of Section 4.3 of the paper: the
//! convex hull of `N` almost-uniform samples approximates the sampled convex
//! polytope (Lemma 4.1), and the reconstructed relation is returned as an
//! H-polytope so it can be fed back into the constraint layer.
//!
//! As the paper notes, convex hull computation is exponential in the
//! dimension; these routines are meant for the *result* dimension `e` of a
//! projection query, which is small. Two algorithms are provided: Andrew's
//! monotone chain for the plane, and supporting-hyperplane enumeration over
//! point subsets for small general dimensions.

use cdb_linalg::{Matrix, Vector};

use crate::{HPolytope, Halfspace};

/// Tolerance for hull predicates, relative to the point cloud's scale.
const HULL_EPS: f64 = 1e-7;

/// Convex hull of a set of points in the plane, returned in counter-clockwise
/// order without repetition (Andrew's monotone chain). Collinear input
/// degenerates to the two extreme points; fewer than three distinct points
/// are returned as-is.
pub fn hull_2d(points: &[Vector]) -> Vec<Vector> {
    assert!(
        points.iter().all(|p| p.dim() == 2),
        "hull_2d expects planar points"
    );
    let mut pts: Vec<(f64, f64)> = points.iter().map(|p| (p[0], p[1])).collect();
    pts.sort_by(|a, b| a.partial_cmp(b).unwrap());
    pts.dedup_by(|a, b| (a.0 - b.0).abs() < 1e-12 && (a.1 - b.1).abs() < 1e-12);
    if pts.len() < 3 {
        return pts
            .into_iter()
            .map(|(x, y)| Vector::from(vec![x, y]))
            .collect();
    }
    let cross = |o: (f64, f64), a: (f64, f64), b: (f64, f64)| {
        (a.0 - o.0) * (b.1 - o.1) - (a.1 - o.1) * (b.0 - o.0)
    };
    let mut lower: Vec<(f64, f64)> = Vec::new();
    for &p in &pts {
        while lower.len() >= 2 && cross(lower[lower.len() - 2], lower[lower.len() - 1], p) <= 0.0 {
            lower.pop();
        }
        lower.push(p);
    }
    let mut upper: Vec<(f64, f64)> = Vec::new();
    for &p in pts.iter().rev() {
        while upper.len() >= 2 && cross(upper[upper.len() - 2], upper[upper.len() - 1], p) <= 0.0 {
            upper.pop();
        }
        upper.push(p);
    }
    lower.pop();
    upper.pop();
    lower.extend(upper);
    lower
        .into_iter()
        .map(|(x, y)| Vector::from(vec![x, y]))
        .collect()
}

/// Area of a simple polygon given by its vertices in order (shoelace formula).
pub fn polygon_area(vertices: &[Vector]) -> f64 {
    if vertices.len() < 3 {
        return 0.0;
    }
    let n = vertices.len();
    let mut twice_area = 0.0;
    for i in 0..n {
        let j = (i + 1) % n;
        twice_area += vertices[i][0] * vertices[j][1] - vertices[j][0] * vertices[i][1];
    }
    twice_area.abs() / 2.0
}

/// A supporting hyperplane of a point cloud together with the indices of the
/// points lying on it.
#[derive(Clone, Debug)]
pub struct Facet {
    /// Outward normal (not normalized).
    pub normal: Vector,
    /// Offset: points satisfy `normal·p ≤ offset`, facet points attain equality.
    pub offset: f64,
    /// Indices of the points on the facet.
    pub on_facet: Vec<usize>,
}

/// Generalized cross product: the vector orthogonal to the `d−1` rows of `m`
/// (each of length `d`), computed by cofactor expansion.
fn generalized_cross(rows: &[Vector]) -> Vector {
    let d = rows[0].dim();
    assert_eq!(
        rows.len(),
        d - 1,
        "need d-1 rows for a generalized cross product"
    );
    let mut normal = Vector::zeros(d);
    for j in 0..d {
        // Minor: remove column j.
        let minor_rows: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| (0..d).filter(|&k| k != j).map(|k| r[k]).collect())
            .collect();
        let det = if d == 1 {
            1.0
        } else {
            Matrix::from_rows(&minor_rows).determinant()
        };
        normal[j] = if j % 2 == 0 { det } else { -det };
    }
    normal
}

/// Enumerates the supporting hyperplanes (facets) of the convex hull of a
/// point cloud in small dimension `d ≥ 2` by testing every `d`-subset of
/// points. Exponential in `d`; intended for the low result dimensions of
/// reconstruction queries.
pub fn facets_of_points(points: &[Vector]) -> Vec<Facet> {
    if points.is_empty() {
        return Vec::new();
    }
    let d = points[0].dim();
    let n = points.len();
    if n < d {
        return Vec::new();
    }
    let scale = points.iter().map(|p| p.norm_inf()).fold(1.0f64, f64::max);
    let tol = HULL_EPS * scale;

    let mut facets: Vec<Facet> = Vec::new();
    let mut seen_keys: Vec<(Vec<i64>, i64)> = Vec::new();
    let mut combo: Vec<usize> = (0..d).collect();
    loop {
        let base = &points[combo[0]];
        let rows: Vec<Vector> = combo[1..].iter().map(|&i| &points[i] - base).collect();
        let mut normal = generalized_cross(&rows);
        let norm = normal.norm();
        if norm > tol {
            normal = normal.scale(1.0 / norm);
            let mut offset = normal.dot(base);
            // Determine on which side the remaining points fall.
            let mut max_slack = f64::NEG_INFINITY;
            let mut min_slack = f64::INFINITY;
            for p in points {
                let s = normal.dot(p) - offset;
                max_slack = max_slack.max(s);
                min_slack = min_slack.min(s);
            }
            let is_facet = if max_slack <= tol {
                true
            } else if min_slack >= -tol {
                normal = -&normal;
                offset = -offset;
                true
            } else {
                false
            };
            if is_facet {
                let key: (Vec<i64>, i64) = (
                    normal.iter().map(|v| (v * 1e6).round() as i64).collect(),
                    (offset / scale.max(1.0) * 1e6).round() as i64,
                );
                if !seen_keys.contains(&key) {
                    seen_keys.push(key);
                    let on_facet: Vec<usize> = points
                        .iter()
                        .enumerate()
                        .filter(|(_, p)| (normal.dot(p) - offset).abs() <= tol)
                        .map(|(i, _)| i)
                        .collect();
                    facets.push(Facet {
                        normal,
                        offset,
                        on_facet,
                    });
                }
            }
        }
        // Next d-combination.
        let mut i = d;
        loop {
            if i == 0 {
                return facets;
            }
            i -= 1;
            if combo[i] != i + n - d {
                combo[i] += 1;
                for j in (i + 1)..d {
                    combo[j] = combo[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// H-representation of the convex hull of a point cloud (small dimensions).
/// Returns `None` when the cloud is affinely degenerate (its hull has no
/// interior) or too small.
pub fn hull_to_hpolytope(points: &[Vector]) -> Option<HPolytope> {
    if points.is_empty() {
        return None;
    }
    let d = points[0].dim();
    if d == 1 {
        let lo = points.iter().map(|p| p[0]).fold(f64::INFINITY, f64::min);
        let hi = points
            .iter()
            .map(|p| p[0])
            .fold(f64::NEG_INFINITY, f64::max);
        if hi - lo <= 0.0 {
            return None;
        }
        return Some(HPolytope::axis_box(&[lo], &[hi]));
    }
    let facets = facets_of_points(points);
    if facets.len() < d + 1 {
        return None;
    }
    let halfspaces: Vec<Halfspace> = facets
        .into_iter()
        .map(|f| Halfspace::new(f.normal, f.offset))
        .collect();
    let poly = HPolytope::new(d, halfspaces);
    // Degenerate clouds can slip through with opposite facets only.
    if poly.chebyshev_ball().map(|(_, r)| r).unwrap_or(0.0) <= 0.0 {
        return None;
    }
    Some(poly)
}

/// An orthonormal basis of the hyperplane orthogonal to `normal` (which must
/// be non-zero), produced by Gram–Schmidt over the standard basis.
fn hyperplane_basis(normal: &Vector) -> Vec<Vector> {
    let d = normal.dim();
    let unit = normal.normalized().expect("non-zero normal required");
    let mut basis: Vec<Vector> = Vec::with_capacity(d - 1);
    for i in 0..d {
        let mut candidate = Vector::basis(d, i);
        candidate -= &unit.scale(unit.dot(&candidate));
        for b in &basis {
            candidate -= &b.scale(b.dot(&candidate));
        }
        if let Some(u) = candidate.normalized() {
            if candidate.norm() > 1e-9 {
                basis.push(u);
                if basis.len() == d - 1 {
                    break;
                }
            }
        }
    }
    basis
}

/// Volume of the convex hull of a point cloud in any (small) dimension.
///
/// Dimension 1 and 2 use closed forms; higher dimensions use the cone
/// decomposition from the centroid over the supporting hyperplanes, recursing
/// on the facets expressed in an orthonormal hyperplane basis (so the
/// `(d−1)`-dimensional facet volume is measured correctly).
pub fn convex_hull_volume(points: &[Vector]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let d = points[0].dim();
    match d {
        0 => 0.0,
        1 => {
            let lo = points.iter().map(|p| p[0]).fold(f64::INFINITY, f64::min);
            let hi = points
                .iter()
                .map(|p| p[0])
                .fold(f64::NEG_INFINITY, f64::max);
            (hi - lo).max(0.0)
        }
        2 => polygon_area(&hull_2d(points)),
        _ => {
            if points.len() < d + 1 {
                return 0.0;
            }
            let centroid = Matrix::mean(points).expect("non-empty cloud");
            let facets = facets_of_points(points);
            let mut volume = 0.0;
            for f in &facets {
                if f.on_facet.len() < d {
                    continue;
                }
                let base_point = &points[f.on_facet[0]];
                let basis = hyperplane_basis(&f.normal);
                if basis.len() != d - 1 {
                    continue;
                }
                let projected: Vec<Vector> = f
                    .on_facet
                    .iter()
                    .map(|&i| {
                        let rel = &points[i] - base_point;
                        Vector::from(basis.iter().map(|b| b.dot(&rel)).collect::<Vec<_>>())
                    })
                    .collect();
                let facet_vol = convex_hull_volume(&projected);
                let unit_normal = f.normal.normalized().expect("facet normal is non-zero");
                let height = (unit_normal.dot(&centroid) - f.offset / f.normal.norm()).abs();
                volume += facet_vol * height / d as f64;
            }
            volume
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v2(x: f64, y: f64) -> Vector {
        Vector::from(vec![x, y])
    }

    #[test]
    fn hull_2d_square_with_interior_points() {
        let pts = vec![
            v2(0.0, 0.0),
            v2(1.0, 0.0),
            v2(1.0, 1.0),
            v2(0.0, 1.0),
            v2(0.5, 0.5),
            v2(0.25, 0.75),
        ];
        let hull = hull_2d(&pts);
        assert_eq!(hull.len(), 4);
        assert!((polygon_area(&hull) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hull_2d_collinear_points() {
        let pts = vec![v2(0.0, 0.0), v2(1.0, 1.0), v2(2.0, 2.0)];
        let hull = hull_2d(&pts);
        assert!(hull.len() <= 2);
        assert_eq!(polygon_area(&hull), 0.0);
    }

    #[test]
    fn polygon_area_triangle() {
        let tri = vec![v2(0.0, 0.0), v2(2.0, 0.0), v2(0.0, 2.0)];
        assert!((polygon_area(&tri) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn facets_of_square() {
        let pts = vec![
            v2(0.0, 0.0),
            v2(1.0, 0.0),
            v2(1.0, 1.0),
            v2(0.0, 1.0),
            v2(0.4, 0.6),
        ];
        let facets = facets_of_points(&pts);
        assert_eq!(facets.len(), 4);
        for f in &facets {
            assert_eq!(f.on_facet.len(), 2);
        }
    }

    #[test]
    fn facets_of_tetrahedron() {
        let pts = vec![
            Vector::from(vec![0.0, 0.0, 0.0]),
            Vector::from(vec![1.0, 0.0, 0.0]),
            Vector::from(vec![0.0, 1.0, 0.0]),
            Vector::from(vec![0.0, 0.0, 1.0]),
        ];
        let facets = facets_of_points(&pts);
        assert_eq!(facets.len(), 4);
    }

    #[test]
    fn hull_volume_matches_known_bodies() {
        // Unit square.
        let square = vec![v2(0.0, 0.0), v2(1.0, 0.0), v2(1.0, 1.0), v2(0.0, 1.0)];
        assert!((convex_hull_volume(&square) - 1.0).abs() < 1e-9);
        // Unit cube in 3D (8 corners), volume 1.
        let mut cube = Vec::new();
        for mask in 0..8u32 {
            cube.push(Vector::from(vec![
                (mask & 1) as f64,
                (mask >> 1 & 1) as f64,
                (mask >> 2 & 1) as f64,
            ]));
        }
        assert!((convex_hull_volume(&cube) - 1.0).abs() < 1e-6);
        // Standard 3-simplex, volume 1/6.
        let simplex = vec![
            Vector::from(vec![0.0, 0.0, 0.0]),
            Vector::from(vec![1.0, 0.0, 0.0]),
            Vector::from(vec![0.0, 1.0, 0.0]),
            Vector::from(vec![0.0, 0.0, 1.0]),
        ];
        assert!((convex_hull_volume(&simplex) - 1.0 / 6.0).abs() < 1e-6);
        // 4-dimensional hypercube, volume 1.
        let mut cube4 = Vec::new();
        for mask in 0..16u32 {
            cube4.push(Vector::from(vec![
                (mask & 1) as f64,
                (mask >> 1 & 1) as f64,
                (mask >> 2 & 1) as f64,
                (mask >> 3 & 1) as f64,
            ]));
        }
        assert!((convex_hull_volume(&cube4) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn degenerate_cloud_has_zero_volume() {
        // Four coplanar points in 3D.
        let flat = vec![
            Vector::from(vec![0.0, 0.0, 0.5]),
            Vector::from(vec![1.0, 0.0, 0.5]),
            Vector::from(vec![0.0, 1.0, 0.5]),
            Vector::from(vec![1.0, 1.0, 0.5]),
        ];
        assert!(convex_hull_volume(&flat).abs() < 1e-9);
        assert!(hull_to_hpolytope(&flat).is_none());
    }

    #[test]
    fn hull_to_hpolytope_roundtrip() {
        let pts = vec![
            v2(0.0, 0.0),
            v2(2.0, 0.0),
            v2(2.0, 1.0),
            v2(0.0, 1.0),
            v2(1.0, 0.5),
        ];
        let poly = hull_to_hpolytope(&pts).unwrap();
        assert!(poly.contains_slice(&[1.0, 0.5], 1e-9));
        assert!(poly.contains_slice(&[1.9, 0.9], 1e-6));
        assert!(!poly.contains_slice(&[2.1, 0.5], 1e-6));
        assert!(!poly.contains_slice(&[1.0, -0.1], 1e-6));
    }

    #[test]
    fn hull_to_hpolytope_1d() {
        let pts = vec![
            Vector::from(vec![3.0]),
            Vector::from(vec![-1.0]),
            Vector::from(vec![2.0]),
        ];
        let poly = hull_to_hpolytope(&pts).unwrap();
        assert!(poly.contains_slice(&[0.0], 0.0));
        assert!(!poly.contains_slice(&[3.5], 1e-9));
    }
}
