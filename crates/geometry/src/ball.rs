//! Euclidean ball volumes.
//!
//! The paper's motivating example for why naive rejection sampling fails
//! (Section 1) is the vanishing ratio between the volume of the unit ball and
//! the unit cube as the dimension grows; these helpers provide the exact
//! values used by the estimator tests and by experiment E2.

/// Volume of the unit ball in dimension `d`.
///
/// Uses the recurrence `V_d = V_{d-2} · 2π / d` with `V_0 = 1`, `V_1 = 2`,
/// which avoids computing Γ at half-integers explicitly.
pub fn unit_ball_volume(d: usize) -> f64 {
    match d {
        0 => 1.0,
        1 => 2.0,
        _ => unit_ball_volume(d - 2) * 2.0 * std::f64::consts::PI / d as f64,
    }
}

/// Volume of the ball of radius `r` in dimension `d`.
pub fn ball_volume(d: usize, r: f64) -> f64 {
    unit_ball_volume(d) * r.powi(d as i32)
}

/// Ratio `vol(B_d) / vol([-1,1]^d)` — the acceptance probability of naive
/// rejection sampling of the unit ball from its bounding cube.
pub fn ball_to_cube_ratio(d: usize) -> f64 {
    unit_ball_volume(d) / 2f64.powi(d as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn known_unit_ball_volumes() {
        assert!((unit_ball_volume(1) - 2.0).abs() < 1e-12);
        assert!((unit_ball_volume(2) - PI).abs() < 1e-12);
        assert!((unit_ball_volume(3) - 4.0 * PI / 3.0).abs() < 1e-12);
        assert!((unit_ball_volume(4) - PI * PI / 2.0).abs() < 1e-12);
        assert!((unit_ball_volume(5) - 8.0 * PI * PI / 15.0).abs() < 1e-12);
    }

    #[test]
    fn radius_scaling() {
        assert!((ball_volume(2, 2.0) - 4.0 * PI).abs() < 1e-12);
        assert!((ball_volume(3, 0.5) - 4.0 * PI / 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_decays_exponentially() {
        // The paper: an exponential number of trials is necessary to hit a
        // d-dimensional sphere from the unit cube.
        let mut prev = f64::INFINITY;
        for d in 1..=14 {
            let r = ball_to_cube_ratio(d);
            assert!(r < prev, "ratio must decrease with dimension");
            prev = r;
        }
        assert!(ball_to_cube_ratio(14) < 1e-4);
    }
}
