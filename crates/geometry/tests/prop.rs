//! Property-based tests for the geometric layer.

use cdb_geometry::hull::{convex_hull_volume, hull_2d, polygon_area};
use cdb_geometry::{volume, HPolytope};
use cdb_linalg::Vector;
use proptest::prelude::*;

fn random_box() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (
        proptest::collection::vec(-5.0f64..5.0, 2..=4),
        proptest::collection::vec(0.1f64..4.0, 2..=4),
    )
        .prop_map(|(lo, width)| {
            let d = lo.len().min(width.len());
            let lo: Vec<f64> = lo[..d].to_vec();
            let hi: Vec<f64> = lo.iter().zip(&width[..d]).map(|(l, w)| l + w).collect();
            (lo, hi)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn box_volume_matches_closed_form((lo, hi) in random_box()) {
        let b = HPolytope::axis_box(&lo, &hi);
        let expected: f64 = lo.iter().zip(&hi).map(|(l, h)| h - l).product();
        let got = volume::polytope_volume(&b);
        prop_assert!((got - expected).abs() < 1e-5 * expected.max(1.0), "{got} vs {expected}");
    }

    #[test]
    fn chebyshev_center_is_deep_inside((lo, hi) in random_box()) {
        let b = HPolytope::axis_box(&lo, &hi);
        let (c, r) = b.chebyshev_ball().unwrap();
        prop_assert!(r > 0.0);
        prop_assert!(b.contains(&c, 1e-9));
        // Every halfspace is at distance at least r from the center.
        for h in b.halfspaces() {
            prop_assert!(h.signed_distance(&c).unwrap() >= r - 1e-6);
        }
    }

    #[test]
    fn vertices_are_contained_and_extreme((lo, hi) in random_box()) {
        let b = HPolytope::axis_box(&lo, &hi);
        let verts = b.vertices();
        prop_assert_eq!(verts.len(), 1 << lo.len());
        for v in &verts {
            prop_assert!(b.contains(v, 1e-6));
        }
    }

    #[test]
    fn union_volume_bounds((lo, hi) in random_box(), shift in 0.0f64..2.0) {
        let a = HPolytope::axis_box(&lo, &hi);
        let t: Vec<f64> = lo.iter().map(|_| shift).collect();
        let lo2: Vec<f64> = lo.iter().zip(&t).map(|(l, s)| l + s).collect();
        let hi2: Vec<f64> = hi.iter().zip(&t).map(|(h, s)| h + s).collect();
        let b = HPolytope::axis_box(&lo2, &hi2);
        let va = volume::polytope_volume(&a);
        let vb = volume::polytope_volume(&b);
        let vu = volume::union_volume(&[a.clone(), b.clone()]);
        prop_assert!(vu <= va + vb + 1e-6);
        prop_assert!(vu >= va.max(vb) - 1e-6);
        // Symmetric difference with itself is zero.
        prop_assert!(volume::symmetric_difference_volume(&[a.clone()], &[a]) < 1e-6);
    }

    #[test]
    fn hull_2d_is_convex_and_contains_points(pts in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 3..40)) {
        let points: Vec<Vector> = pts.iter().map(|&(x, y)| Vector::from(vec![x, y])).collect();
        let hull = hull_2d(&points);
        let area = polygon_area(&hull);
        prop_assert!(area >= 0.0);
        // The hull area equals the generic convex hull volume routine.
        let generic = convex_hull_volume(&points);
        prop_assert!((area - generic).abs() < 1e-9);
        // Every point is inside or on the hull: check via the hull polytope when non-degenerate.
        if area > 1e-6 {
            let poly = cdb_geometry::hull::hull_to_hpolytope(&points).unwrap();
            for p in &points {
                prop_assert!(poly.contains(p, 1e-5));
            }
        }
    }

    #[test]
    fn affine_image_scales_volume((lo, hi) in random_box(), s in 0.2f64..3.0) {
        let d = lo.len();
        let b = HPolytope::axis_box(&lo, &hi);
        let map = cdb_linalg::AffineMap::scaling(d, s);
        let img = b.affine_image(&map);
        let v0 = volume::polytope_volume(&b);
        let v1 = volume::polytope_volume(&img);
        prop_assert!((v1 - v0 * map.det_abs()).abs() < 1e-4 * (v0 * map.det_abs()).max(1.0));
    }
}
