//! Cholesky factorization of symmetric positive definite matrices.
//!
//! The rounding step of the Dyer–Frieze–Kannan sampler whitens the body with
//! the inverse square root of an estimated covariance matrix; the Cholesky
//! factor is exactly that square root.

use crate::{LinalgError, Matrix, Vector};

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Clone, Debug)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive definite matrix.
    pub fn new(a: &Matrix) -> Result<Cholesky, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                expected: a.rows(),
                found: a.cols(),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Determinant of the original matrix (product of squared diagonal
    /// entries of `L`).
    pub fn determinant(&self) -> f64 {
        let n = self.l.rows();
        let mut det = 1.0;
        for i in 0..n {
            det *= self.l[(i, i)] * self.l[(i, i)];
        }
        det
    }

    /// Solves `A x = b` using the factorization.
    pub fn solve(&self, b: &Vector) -> Result<Vector, LinalgError> {
        let n = self.l.rows();
        if b.dim() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                found: b.dim(),
            });
        }
        // Forward substitution L y = b.
        let mut y = Vector::zeros(n);
        for i in 0..n {
            let mut sum = b[i];
            for j in 0..i {
                sum -= self.l[(i, j)] * y[j];
            }
            y[i] = sum / self.l[(i, i)];
        }
        // Back substitution Lᵀ x = y.
        let mut x = Vector::zeros(n);
        for i in (0..n).rev() {
            let mut sum = y[i];
            for j in (i + 1)..n {
                sum -= self.l[(j, i)] * x[j];
            }
            x[i] = sum / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Applies `L` to a vector (`y = L v`), mapping the unit ball to the
    /// ellipsoid described by the original covariance matrix.
    pub fn apply(&self, v: &Vector) -> Vector {
        self.l.mul_vector(v)
    }

    /// Solves `L y = v` (inverse of [`Cholesky::apply`]), whitening a vector.
    pub fn apply_inverse(&self, v: &Vector) -> Result<Vector, LinalgError> {
        let n = self.l.rows();
        if v.dim() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                found: v.dim(),
            });
        }
        let mut y = Vector::zeros(n);
        for i in 0..n {
            let mut sum = v[i];
            for j in 0..i {
                sum -= self.l[(i, j)] * y[j];
            }
            y[i] = sum / self.l[(i, i)];
        }
        Ok(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorization_reconstructs_matrix() {
        let a = Matrix::from_rows(&[
            vec![4.0, 2.0, 0.6],
            vec![2.0, 5.0, 1.5],
            vec![0.6, 1.5, 3.0],
        ]);
        let ch = Cholesky::new(&a).unwrap();
        let l = ch.factor();
        let back = l.mul_matrix(&l.transpose());
        for i in 0..3 {
            for j in 0..3 {
                assert!((back[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_matches_lu() {
        let a = Matrix::from_rows(&[vec![6.0, 2.0], vec![2.0, 4.0]]);
        let b = Vector::from(vec![1.0, -1.0]);
        let x1 = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        let x2 = a.solve(&b).unwrap();
        for i in 0..2 {
            assert!((x1[i] - x2[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn determinant_matches() {
        let a = Matrix::from_rows(&[vec![6.0, 2.0], vec![2.0, 4.0]]);
        assert!((Cholesky::new(&a).unwrap().determinant() - a.determinant()).abs() < 1e-10);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite)
        ));
        let b = Matrix::from_rows(&[vec![0.0, 0.0], vec![0.0, 1.0]]);
        assert!(Cholesky::new(&b).is_err());
    }

    #[test]
    fn apply_and_inverse_roundtrip() {
        let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
        let ch = Cholesky::new(&a).unwrap();
        let v = Vector::from(vec![0.7, -1.2]);
        let w = ch.apply_inverse(&ch.apply(&v)).unwrap();
        for i in 0..2 {
            assert!((w[i] - v[i]).abs() < 1e-12);
        }
    }
}
