//! Invertible affine maps `x ↦ A x + b`.
//!
//! The Dyer–Frieze–Kannan generator first applies an affine transformation
//! that makes the convex body "well-rounded"; points are sampled in the
//! transformed space and mapped back through the inverse, and volumes are
//! rescaled by `|det A|`.

use crate::{LinalgError, Matrix, Vector};

/// An invertible affine transformation `x ↦ A x + b` with a cached inverse.
#[derive(Clone, Debug)]
pub struct AffineMap {
    forward: Matrix,
    inverse: Matrix,
    offset: Vector,
    det_abs: f64,
}

impl AffineMap {
    /// The identity map in dimension `dim`.
    pub fn identity(dim: usize) -> Self {
        AffineMap {
            forward: Matrix::identity(dim),
            inverse: Matrix::identity(dim),
            offset: Vector::zeros(dim),
            det_abs: 1.0,
        }
    }

    /// Builds the map `x ↦ A x + b`; fails when `A` is singular.
    pub fn new(a: Matrix, b: Vector) -> Result<Self, LinalgError> {
        if a.rows() != b.dim() {
            return Err(LinalgError::DimensionMismatch {
                expected: a.rows(),
                found: b.dim(),
            });
        }
        let inverse = a.inverse()?;
        let det_abs = a.determinant().abs();
        Ok(AffineMap {
            forward: a,
            inverse,
            offset: b,
            det_abs,
        })
    }

    /// A pure translation.
    pub fn translation(b: Vector) -> Self {
        let dim = b.dim();
        AffineMap {
            forward: Matrix::identity(dim),
            inverse: Matrix::identity(dim),
            offset: b,
            det_abs: 1.0,
        }
    }

    /// A uniform scaling around the origin (`s != 0`).
    pub fn scaling(dim: usize, s: f64) -> Self {
        assert!(s != 0.0, "zero scaling is not invertible");
        AffineMap {
            forward: Matrix::identity(dim).scale(s),
            inverse: Matrix::identity(dim).scale(1.0 / s),
            offset: Vector::zeros(dim),
            det_abs: s.abs().powi(dim as i32),
        }
    }

    /// The space dimension the map acts on.
    pub fn dim(&self) -> usize {
        self.offset.dim()
    }

    /// The linear part `A`.
    pub fn linear(&self) -> &Matrix {
        &self.forward
    }

    /// The translation part `b`.
    pub fn translation_part(&self) -> &Vector {
        &self.offset
    }

    /// Absolute value of the determinant of the linear part; volumes are
    /// multiplied by this factor under the map.
    pub fn det_abs(&self) -> f64 {
        self.det_abs
    }

    /// Applies the map: `A x + b`.
    pub fn apply(&self, x: &Vector) -> Vector {
        &self.forward.mul_vector(x) + &self.offset
    }

    /// Applies the inverse map: `A⁻¹ (y − b)`.
    pub fn apply_inverse(&self, y: &Vector) -> Vector {
        self.inverse.mul_vector(&(y - &self.offset))
    }

    /// Composition `self ∘ other` (first `other`, then `self`).
    pub fn compose(&self, other: &AffineMap) -> AffineMap {
        AffineMap {
            forward: self.forward.mul_matrix(&other.forward),
            inverse: other.inverse.mul_matrix(&self.inverse),
            offset: &self.forward.mul_vector(&other.offset) + &self.offset,
            det_abs: self.det_abs * other.det_abs,
        }
    }

    /// The inverse map.
    pub fn inverted(&self) -> AffineMap {
        AffineMap {
            forward: self.inverse.clone(),
            inverse: self.forward.clone(),
            offset: -&self.inverse.mul_vector(&self.offset),
            det_abs: 1.0 / self.det_abs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_neutral() {
        let id = AffineMap::identity(3);
        let v = Vector::from(vec![1.0, -2.0, 0.5]);
        assert_eq!(id.apply(&v).as_slice(), v.as_slice());
        assert_eq!(id.det_abs(), 1.0);
    }

    #[test]
    fn apply_and_inverse_roundtrip() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![0.0, 3.0]]);
        let map = AffineMap::new(a, Vector::from(vec![1.0, -1.0])).unwrap();
        let v = Vector::from(vec![0.3, 0.9]);
        let w = map.apply_inverse(&map.apply(&v));
        for i in 0..2 {
            assert!((w[i] - v[i]).abs() < 1e-12);
        }
        assert!((map.det_abs() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn singular_linear_part_rejected() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        assert!(AffineMap::new(a, Vector::zeros(2)).is_err());
    }

    #[test]
    fn composition_matches_sequential_application() {
        let m1 = AffineMap::new(
            Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 1.0]]),
            Vector::from(vec![1.0, 0.0]),
        )
        .unwrap();
        let m2 = AffineMap::new(
            Matrix::from_rows(&[vec![0.0, -1.0], vec![1.0, 0.0]]),
            Vector::from(vec![0.0, 2.0]),
        )
        .unwrap();
        let comp = m1.compose(&m2);
        let v = Vector::from(vec![0.7, -0.4]);
        let direct = m1.apply(&m2.apply(&v));
        let composed = comp.apply(&v);
        for i in 0..2 {
            assert!((direct[i] - composed[i]).abs() < 1e-12);
        }
        assert!((comp.det_abs() - m1.det_abs() * m2.det_abs()).abs() < 1e-12);
    }

    #[test]
    fn inverted_map() {
        let m = AffineMap::scaling(2, 4.0)
            .compose(&AffineMap::translation(Vector::from(vec![1.0, 2.0])));
        let inv = m.inverted();
        let v = Vector::from(vec![-0.2, 0.8]);
        let w = inv.apply(&m.apply(&v));
        for i in 0..2 {
            assert!((w[i] - v[i]).abs() < 1e-12);
        }
        assert!((inv.det_abs() - 1.0 / m.det_abs()).abs() < 1e-12);
    }

    #[test]
    fn scaling_determinant() {
        let m = AffineMap::scaling(3, 2.0);
        assert!((m.det_abs() - 8.0).abs() < 1e-12);
        let m = AffineMap::scaling(2, -3.0);
        assert!((m.det_abs() - 9.0).abs() < 1e-12);
    }
}
