//! Dense linear algebra for the spatial constraint database workspace.
//!
//! The samplers, the rounding procedure of the Dyer–Frieze–Kannan generator
//! and the geometric layer all need a small, dependency-free dense linear
//! algebra kit: vectors, matrices, LU and Cholesky factorizations, linear
//! solves, determinants and affine maps. Dimensions in this workspace are
//! modest (the paper's point is precisely that the *symbolic* algorithms blow
//! up with dimension, not the numeric kernels), so simple `Vec<f64>`-backed
//! row-major storage is the right trade-off.
//!
//! # Example
//!
//! ```
//! use cdb_linalg::{Matrix, Vector};
//!
//! let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
//! let b = Vector::from(vec![1.0, 2.0]);
//! let x = a.solve(&b).unwrap();
//! let back = a.mul_vector(&x);
//! assert!((back[0] - 1.0).abs() < 1e-12 && (back[1] - 2.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod affine;
mod cholesky;
pub mod kernels;
mod lu;
mod matrix;
mod vector;

pub use affine::AffineMap;
pub use cholesky::Cholesky;
pub use lu::Lu;
pub use matrix::Matrix;
pub use vector::Vector;

/// Numerical tolerance used by the factorizations when deciding whether a
/// pivot is effectively zero.
pub const EPSILON: f64 = 1e-10;

/// Errors produced by the linear algebra kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix is singular (or numerically singular) and the requested
    /// operation needs an invertible matrix.
    Singular,
    /// The matrix is not positive definite (Cholesky only).
    NotPositiveDefinite,
    /// Two operands have incompatible dimensions.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Dimension that was provided.
        found: usize,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
            LinalgError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}
