//! LU factorization with partial pivoting.

use crate::{LinalgError, Matrix, Vector, EPSILON};

/// The result of an LU factorization `P A = L U` with partial pivoting.
///
/// The factors are stored packed in a single matrix (`L` below the diagonal
/// with an implicit unit diagonal, `U` on and above the diagonal) together
/// with the row permutation and its sign.
#[derive(Clone, Debug)]
pub struct Lu {
    packed: Matrix,
    perm: Vec<usize>,
    sign: f64,
    singular: bool,
}

impl Lu {
    /// Factorizes a square matrix.
    pub fn new(a: &Matrix) -> Result<Lu, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                expected: a.rows(),
                found: a.cols(),
            });
        }
        let n = a.rows();
        let mut m = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let mut singular = false;

        for k in 0..n {
            // Partial pivoting: find the largest entry in column k at or below row k.
            let mut pivot_row = k;
            let mut pivot_val = m[(k, k)].abs();
            for i in (k + 1)..n {
                if m[(i, k)].abs() > pivot_val {
                    pivot_val = m[(i, k)].abs();
                    pivot_row = i;
                }
            }
            if pivot_val < EPSILON {
                singular = true;
                continue;
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = m[(k, j)];
                    m[(k, j)] = m[(pivot_row, j)];
                    m[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                sign = -sign;
            }
            let pivot = m[(k, k)];
            for i in (k + 1)..n {
                let factor = m[(i, k)] / pivot;
                m[(i, k)] = factor;
                for j in (k + 1)..n {
                    m[(i, j)] -= factor * m[(k, j)];
                }
            }
        }

        Ok(Lu {
            packed: m,
            perm,
            sign,
            singular,
        })
    }

    /// Returns `true` when a zero pivot was encountered.
    pub fn is_singular(&self) -> bool {
        self.singular
    }

    /// Determinant of the original matrix (zero when singular).
    pub fn determinant(&self) -> f64 {
        if self.singular {
            return 0.0;
        }
        let n = self.packed.rows();
        let mut det = self.sign;
        for i in 0..n {
            det *= self.packed[(i, i)];
        }
        det
    }

    /// Log of the absolute determinant, useful when the determinant itself
    /// under- or overflows (e.g. volumes of strongly anisotropic rounding
    /// transforms).
    pub fn ln_abs_determinant(&self) -> f64 {
        if self.singular {
            return f64::NEG_INFINITY;
        }
        let n = self.packed.rows();
        (0..n).map(|i| self.packed[(i, i)].abs().ln()).sum()
    }

    /// Solves `A x = b`.
    pub fn solve(&self, b: &Vector) -> Result<Vector, LinalgError> {
        if self.singular {
            return Err(LinalgError::Singular);
        }
        let n = self.packed.rows();
        if b.dim() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                found: b.dim(),
            });
        }
        // Forward substitution on the permuted right-hand side.
        let mut y = Vector::zeros(n);
        for i in 0..n {
            let mut sum = b[self.perm[i]];
            for j in 0..i {
                sum -= self.packed[(i, j)] * y[j];
            }
            y[i] = sum;
        }
        // Back substitution.
        let mut x = Vector::zeros(n);
        for i in (0..n).rev() {
            let mut sum = y[i];
            for j in (i + 1)..n {
                sum -= self.packed[(i, j)] * x[j];
            }
            x[i] = sum / self.packed[(i, i)];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorize_and_solve() {
        let a = Matrix::from_rows(&[
            vec![0.0, 2.0, 1.0],
            vec![1.0, 1.0, 0.0],
            vec![2.0, 0.0, 3.0],
        ]);
        let lu = Lu::new(&a).unwrap();
        assert!(!lu.is_singular());
        let b = Vector::from(vec![3.0, 2.0, 5.0]);
        let x = lu.solve(&b).unwrap();
        let back = a.mul_vector(&x);
        for i in 0..3 {
            assert!((back[i] - b[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn determinant_sign_with_pivoting() {
        // This matrix requires a row swap; determinant is -(2*2*?) computed by expansion = -6.
        let a = Matrix::from_rows(&[
            vec![0.0, 2.0, 1.0],
            vec![1.0, 1.0, 0.0],
            vec![2.0, 0.0, 3.0],
        ]);
        let det = Lu::new(&a).unwrap().determinant();
        // Expansion: det = 0*(1*3-0*0) - 2*(1*3-0*2) + 1*(1*0-1*2) = -6 - 2 = -8.
        assert!((det + 8.0).abs() < 1e-10);
    }

    #[test]
    fn singular_detection() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        let lu = Lu::new(&a).unwrap();
        assert!(lu.is_singular());
        assert_eq!(lu.determinant(), 0.0);
        assert!(lu.solve(&Vector::from(vec![1.0, 1.0])).is_err());
        assert_eq!(lu.ln_abs_determinant(), f64::NEG_INFINITY);
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(Lu::new(&a).is_err());
    }

    #[test]
    fn ln_abs_determinant_matches_log_of_det() {
        let a = Matrix::from_rows(&[vec![3.0, 1.0], vec![1.0, 2.0]]);
        let lu = Lu::new(&a).unwrap();
        assert!((lu.ln_abs_determinant() - 5.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn wrong_rhs_dimension() {
        let a = Matrix::identity(3);
        let lu = Lu::new(&a).unwrap();
        assert!(matches!(
            lu.solve(&Vector::zeros(2)),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }
}
