//! Dense floating-point vectors.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dense `f64` vector.
#[derive(Clone, PartialEq, Default)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a zero vector of the given dimension.
    pub fn zeros(dim: usize) -> Self {
        Vector {
            data: vec![0.0; dim],
        }
    }

    /// Creates a vector with all entries equal to `value`.
    pub fn filled(dim: usize, value: f64) -> Self {
        Vector {
            data: vec![value; dim],
        }
    }

    /// Creates the `i`-th standard basis vector in dimension `dim`.
    pub fn basis(dim: usize, i: usize) -> Self {
        assert!(i < dim, "basis index out of range");
        let mut v = Vector::zeros(dim);
        v[i] = 1.0;
        v
    }

    /// Dimension of the vector.
    pub fn dim(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the vector has no components.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the underlying slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Iterates over the components.
    pub fn iter(&self) -> impl Iterator<Item = &f64> {
        self.data.iter()
    }

    /// Dot product with another vector of the same dimension (unrolled; see
    /// [`crate::kernels::dot`]).
    pub fn dot(&self, other: &Vector) -> f64 {
        assert_eq!(self.dim(), other.dim(), "dot product dimension mismatch");
        crate::kernels::dot(&self.data, &other.data)
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm.
    pub fn norm_squared(&self) -> f64 {
        self.dot(self)
    }

    /// Infinity norm (largest absolute component).
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }

    /// Euclidean distance to another vector.
    pub fn distance(&self, other: &Vector) -> f64 {
        (self - other).norm()
    }

    /// Scales the vector by a scalar, returning a new vector.
    pub fn scale(&self, s: f64) -> Vector {
        Vector {
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }

    /// Scales the vector in place: `self ← s·self`.
    pub fn scale_in_place(&mut self, s: f64) {
        crate::kernels::scale_in_place(&mut self.data, s);
    }

    /// The `axpy` update `self ← self + a·x`, in place (no allocation).
    pub fn axpy(&mut self, a: f64, x: &Vector) {
        assert_eq!(self.dim(), x.dim(), "axpy dimension mismatch");
        crate::kernels::axpy(&mut self.data, a, &x.data);
    }

    /// Overwrites `self` with a copy of `other`, reusing the existing
    /// allocation when the capacity suffices.
    pub fn copy_from(&mut self, other: &Vector) {
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Resizes the vector to `dim` components, filling new slots with `value`.
    pub fn resize(&mut self, dim: usize, value: f64) {
        self.data.resize(dim, value);
    }

    /// Returns the unit vector in the same direction; `None` for (near) zero
    /// vectors.
    pub fn normalized(&self) -> Option<Vector> {
        let n = self.norm();
        if n < 1e-300 {
            None
        } else {
            Some(self.scale(1.0 / n))
        }
    }

    /// Normalizes the vector in place; returns `false` (leaving the data
    /// unchanged) for (near) zero vectors.
    pub fn normalize_in_place(&mut self) -> bool {
        let n = self.norm();
        if n < 1e-300 {
            false
        } else {
            self.scale_in_place(1.0 / n);
            true
        }
    }

    /// Componentwise `self + t * dir`.
    pub fn add_scaled(&self, dir: &Vector, t: f64) -> Vector {
        assert_eq!(self.dim(), dir.dim());
        Vector {
            data: self
                .data
                .iter()
                .zip(&dir.data)
                .map(|(a, b)| a + t * b)
                .collect(),
        }
    }

    /// Projection of the vector onto the coordinates listed in `coords`
    /// (in the given order).
    pub fn project(&self, coords: &[usize]) -> Vector {
        Vector {
            data: coords.iter().map(|&i| self.data[i]).collect(),
        }
    }

    /// Returns `true` if all components are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Vector { data }
    }
}

impl From<&[f64]> for Vector {
    fn from(data: &[f64]) -> Self {
        Vector {
            data: data.to_vec(),
        }
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl Add for &Vector {
    type Output = Vector;
    fn add(self, rhs: &Vector) -> Vector {
        assert_eq!(self.dim(), rhs.dim());
        Vector {
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Vector {
    type Output = Vector;
    fn sub(self, rhs: &Vector) -> Vector {
        assert_eq!(self.dim(), rhs.dim());
        Vector {
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.dim(), rhs.dim());
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.dim(), rhs.dim());
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;
    fn mul(self, s: f64) -> Vector {
        self.scale(s)
    }
}

impl Neg for &Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        self.scale(-1.0)
    }
}

impl fmt::Debug for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vector({:?})", self.data)
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.6}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let z = Vector::zeros(3);
        assert_eq!(z.dim(), 3);
        assert_eq!(z.norm(), 0.0);
        let e1 = Vector::basis(3, 1);
        assert_eq!(e1.as_slice(), &[0.0, 1.0, 0.0]);
        let f = Vector::filled(2, 2.5);
        assert_eq!(f.as_slice(), &[2.5, 2.5]);
    }

    #[test]
    fn dot_and_norms() {
        let a = Vector::from(vec![3.0, 4.0]);
        let b = Vector::from(vec![1.0, 2.0]);
        assert_eq!(a.dot(&b), 11.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.norm_squared(), 25.0);
        assert_eq!(a.norm_inf(), 4.0);
        assert!((a.distance(&b) - (4.0f64 + 4.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = Vector::from(vec![1.0, 2.0]);
        let b = Vector::from(vec![3.0, -1.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 1.0]);
        assert_eq!((&a - &b).as_slice(), &[-2.0, 3.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        assert_eq!(a.add_scaled(&b, 2.0).as_slice(), &[7.0, 0.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 1.0]);
        c -= &b;
        assert_eq!(c.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn normalization_and_projection() {
        let a = Vector::from(vec![3.0, 0.0, 4.0]);
        let n = a.normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < 1e-12);
        assert!(Vector::zeros(3).normalized().is_none());
        assert_eq!(a.project(&[2, 0]).as_slice(), &[4.0, 3.0]);
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let _ = Vector::zeros(2).dot(&Vector::zeros(3));
    }

    #[test]
    fn in_place_updates() {
        let mut a = Vector::from(vec![1.0, 2.0]);
        a.axpy(2.0, &Vector::from(vec![3.0, -1.0]));
        assert_eq!(a.as_slice(), &[7.0, 0.0]);
        a.scale_in_place(0.5);
        assert_eq!(a.as_slice(), &[3.5, 0.0]);
        a.copy_from(&Vector::from(vec![1.0, 2.0, 3.0]));
        assert_eq!(a.as_slice(), &[1.0, 2.0, 3.0]);
        a.resize(2, 0.0);
        assert_eq!(a.as_slice(), &[1.0, 2.0]);
        let mut u = Vector::from(vec![3.0, 4.0]);
        assert!(u.normalize_in_place());
        assert!((u.norm() - 1.0).abs() < 1e-12);
        let mut z = Vector::zeros(2);
        assert!(!z.normalize_in_place());
    }
}
