//! In-place slice kernels for the random-walk hot path.
//!
//! The walk engine in `cdb-sampler` performs a handful of dense operations
//! per step — one matrix–vector product, a few dots and one `y += a·x`
//! update — millions of times per second. These kernels operate on plain
//! `&[f64]` slices so the oracle layer can run them directly over cached
//! flat constraint matrices without constructing [`crate::Vector`] or
//! [`crate::Matrix`] temporaries, and they are written to keep the inner
//! loops allocation-free and auto-vectorizable (four independent
//! accumulators for the reductions).
//!
//! # Bitwise reproducibility across representations
//!
//! The structured kernels ([`sparse_row_dot`], [`sparse_mat_vec_into`],
//! [`axis_mat_vec_into`]) skip the zero entries of a row but **replicate the
//! dense summation order exactly**: [`dot`] accumulates index class `i % 4`
//! of the 4-aligned prefix into its own accumulator, sums the remainder into
//! a tail accumulator, and combines as `(acc0 + acc2) + (acc1 + acc3) +
//! tail`. Adding a product that is exactly `±0.0` never changes a partial
//! sum (the accumulators start at `+0.0`, and IEEE-754 addition of a signed
//! zero to any finite value is exact), so accumulating only the stored
//! nonzeros into the same classes and combining the same way yields the
//! same bits as the dense reduction. The geometry layer relies on this:
//! switching a polytope between its dense and structured constraint-matrix
//! representations changes per-step cost, never a single sampled bit (the
//! `structured_walk` property suite in `cdb-sampler` pins whole
//! trajectories).

/// Dot product of two equal-length slices, unrolled four-wide so the
/// reduction runs on independent accumulators.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot kernel length mismatch");
    let mut acc = [0.0f64; 4];
    let (a4, a_rest) = a.split_at(a.len() - a.len() % 4);
    let (b4, b_rest) = b.split_at(b.len() - b.len() % 4);
    for (ca, cb) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    let mut tail = 0.0;
    for (x, y) in a_rest.iter().zip(b_rest) {
        tail += x * y;
    }
    (acc[0] + acc[2]) + (acc[1] + acc[3]) + tail
}

/// The classical `axpy` update `y ← y + a·x`, in place.
#[inline]
pub fn axpy(y: &mut [f64], a: f64, x: &[f64]) {
    assert_eq!(y.len(), x.len(), "axpy kernel length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// Scales a slice in place: `y ← s·y`.
#[inline]
pub fn scale_in_place(y: &mut [f64], s: f64) {
    for yi in y.iter_mut() {
        *yi *= s;
    }
}

/// Dense matrix–vector product `out ← A·x` for a row-major flat matrix with
/// `rows` rows and `x.len()` columns, written into a caller-owned buffer.
#[inline]
pub fn mat_vec_into(a: &[f64], rows: usize, x: &[f64], out: &mut [f64]) {
    let cols = x.len();
    assert_eq!(a.len(), rows * cols, "mat_vec flat buffer length mismatch");
    assert_eq!(out.len(), rows, "mat_vec output length mismatch");
    for (i, o) in out.iter_mut().enumerate() {
        *o = dot(&a[i * cols..(i + 1) * cols], x);
    }
}

/// Dot product of one CSR row (`cols[k]`/`vals[k]` pairs, columns strictly
/// increasing) with a dense vector `x` of logical length `n`.
///
/// Accumulates each stored product into the class its column would occupy in
/// the dense reduction of [`dot`] (`col % 4` within the 4-aligned prefix, a
/// tail accumulator past it) and combines identically, so the result is
/// bitwise equal to `dot(dense_row, x)` — see the module docs.
///
/// Rows with at most three nonzeros — every row of a box, banded-overlay or
/// 3-literal SAT system — take shortcuts: the dense combine tree
/// `(c0 + c2) + (c1 + c3) + tail` degenerates to the plain sum of the
/// products (grouped as the tree would group them) followed by `+ 0.0`.
/// Every other addition in the tree has a `+0.0` operand, which is exact
/// and only ever canonicalizes `-0.0` to `+0.0` — exactly what the trailing
/// `+ 0.0` of the shortcut reproduces — and IEEE-754 addition is commutative
/// bitwise, so only the *grouping* of the tree is observable (and for one or
/// two products there is none). From four nonzeros up the kernel runs the
/// faithful per-class accumulation.
#[inline]
pub fn sparse_row_dot(cols: &[u32], vals: &[f64], x: &[f64]) -> f64 {
    debug_assert_eq!(cols.len(), vals.len(), "CSR row col/val length mismatch");
    match cols.len() {
        0 => 0.0,
        1 => vals[0] * x[cols[0] as usize] + 0.0,
        2 => (vals[0] * x[cols[0] as usize] + vals[1] * x[cols[1] as usize]) + 0.0,
        3 => {
            // Three products: the dense tree `(c0 + c2) + (c1 + c3) + tail`
            // reduces two of them first — the pair sharing an accumulator
            // slot if one exists, else the pair sharing a combine-tree group
            // (`{c0, c2}`, `{c1, c3}` or the tail), else the two non-tail
            // products (whose group sums `(c0 + c2)` and `(c1 + c3)` join
            // before the tail does). All other tree operands are exactly
            // `+0.0`, so the remaining additions collapse to `+ third` and a
            // final canonicalizing `+ 0.0`, as in the shorter cases.
            let n4 = x.len() - x.len() % 4;
            let slot = |c: u32| -> u32 {
                if (c as usize) < n4 {
                    c & 3
                } else {
                    4
                }
            };
            let group = |k: u32| -> u32 {
                if k == 4 {
                    2
                } else {
                    k & 1
                }
            };
            let p1 = vals[0] * x[cols[0] as usize];
            let p2 = vals[1] * x[cols[1] as usize];
            let p3 = vals[2] * x[cols[2] as usize];
            let (k1, k2, k3) = (slot(cols[0]), slot(cols[1]), slot(cols[2]));
            let (pair, third) = if k1 == k2 {
                (p1 + p2, p3)
            } else if k1 == k3 {
                (p1 + p3, p2)
            } else if k2 == k3 {
                (p2 + p3, p1)
            } else if group(k1) == group(k2) {
                (p1 + p2, p3)
            } else if group(k1) == group(k3) {
                (p1 + p3, p2)
            } else if group(k2) == group(k3) {
                (p2 + p3, p1)
            } else if k3 == 4 {
                (p1 + p2, p3)
            } else if k2 == 4 {
                (p1 + p3, p2)
            } else {
                (p2 + p3, p1)
            };
            (pair + third) + 0.0
        }
        _ => {
            let n4 = x.len() - x.len() % 4;
            let mut acc = [0.0f64; 4];
            let mut tail = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                let c = c as usize;
                if c < n4 {
                    acc[c % 4] += v * x[c];
                } else {
                    tail += v * x[c];
                }
            }
            (acc[0] + acc[2]) + (acc[1] + acc[3]) + tail
        }
    }
}

/// Dot product of one *class-major* CSR row with a dense vector `x`.
///
/// The general (`nnz ≥ 4`) arm of [`sparse_row_dot`] recomputes, per stored
/// entry, which dense accumulator class the entry belongs to (`col % 4`
/// inside the 4-aligned prefix, the tail past it) — bookkeeping that costs
/// as much as the multiply itself. When the row's entries are instead
/// *reordered at construction time* into class-major order — class-0 entries
/// first (columns ascending), then class 1, 2, 3, then the tail — the class
/// of every entry is implied by its position, and the kernel reduces each
/// contiguous segment with a plain accumulation.
///
/// `seg` holds the four relative segment ends: entries `0..seg[0]` are
/// class 0, `seg[0]..seg[1]` class 1, `seg[1]..seg[2]` class 2,
/// `seg[2]..seg[3]` class 3 and `seg[3]..` the tail. Within each segment the
/// products accumulate in ascending-column order — exactly the order the
/// dense reduction of [`dot`] feeds that accumulator — and the segment sums
/// combine as `(s0 + s2) + (s1 + s3) + tail`, so the result is bitwise equal
/// to the dense row reduction (see the module docs).
#[inline]
pub fn sparse_row_dot_classed(cols: &[u32], vals: &[f64], seg: &[u32; 4], x: &[f64]) -> f64 {
    debug_assert_eq!(cols.len(), vals.len(), "CSR row col/val length mismatch");
    debug_assert!(seg[3] as usize <= vals.len(), "segment ends out of range");
    let sum_segment = |lo: usize, hi: usize| -> f64 {
        let mut s = 0.0;
        for (&c, &v) in cols[lo..hi].iter().zip(&vals[lo..hi]) {
            s += v * x[c as usize];
        }
        s
    };
    let s0 = sum_segment(0, seg[0] as usize);
    let s1 = sum_segment(seg[0] as usize, seg[1] as usize);
    let s2 = sum_segment(seg[1] as usize, seg[2] as usize);
    let s3 = sum_segment(seg[2] as usize, seg[3] as usize);
    let tail = sum_segment(seg[3] as usize, vals.len());
    (s0 + s2) + (s1 + s3) + tail
}

/// CSR matrix–vector product `out ← A·x`. `row_ptr` has `rows + 1` entries;
/// row `i` owns the index range `row_ptr[i]..row_ptr[i + 1]` of
/// `cols`/`vals`. Each row reduces through [`sparse_row_dot`], so the output
/// is bitwise equal to the dense [`mat_vec_into`] on the expanded matrix —
/// for any within-row entry order whose classes stay ascending, including
/// the class-major layout of `cdb-geometry`'s CSR matrices. Note that the
/// geometry layer's hot path no longer calls this whole-matrix kernel: it
/// dispatches per row between the ≤ 3-nonzero shortcut arms of
/// [`sparse_row_dot`] and the class-major [`sparse_row_dot_classed`]; this
/// remains the plain CSR reference kernel for external callers and the
/// equivalence tests.
#[inline]
pub fn sparse_mat_vec_into(
    row_ptr: &[usize],
    cols: &[u32],
    vals: &[f64],
    x: &[f64],
    out: &mut [f64],
) {
    assert_eq!(
        row_ptr.len(),
        out.len() + 1,
        "CSR row pointer length mismatch"
    );
    for (i, o) in out.iter_mut().enumerate() {
        let (lo, hi) = (row_ptr[i], row_ptr[i + 1]);
        *o = sparse_row_dot(&cols[lo..hi], &vals[lo..hi], x);
    }
}

/// Matrix–vector product for a matrix with (at most) one nonzero per row:
/// `out[i] ← coeffs[i] · x[axes[i]]`. This is the axis-aligned fast path —
/// O(rows) work in place of the O(rows·cols) dense product. The `+ 0.0`
/// canonicalizes a `-0.0` product to `+0.0`, which is what the dense
/// reduction would produce (its accumulators never hold `-0.0`), keeping the
/// bitwise-equality contract of the module docs.
#[inline]
pub fn axis_mat_vec_into(axes: &[u32], coeffs: &[f64], x: &[f64], out: &mut [f64]) {
    assert_eq!(axes.len(), out.len(), "axis row count mismatch");
    assert_eq!(coeffs.len(), out.len(), "axis coefficient count mismatch");
    for ((o, &axis), &coeff) in out.iter_mut().zip(axes).zip(coeffs) {
        *o = coeff * x[axis as usize] + 0.0;
    }
}

/// The hit-and-run ratio test over precomputed per-row growths (`A·dir`) and
/// residuals (`b − A·x`): intersects all the constraints
/// `growth[i]·t ≤ residual[i] + tol` into a chord interval `(lo, hi)`,
/// possibly unbounded (callers clamp against their certificate). Returns
/// `(0.0, 0.0)` when the intersection is empty.
///
/// Growths with `|g| ≤ 1e-14` are treated as parallel to the line: they
/// either cut nothing or (negative slack) empty the chord.
#[inline]
pub fn chord_from_residuals(growth: &[f64], residual: &[f64], tol: f64) -> (f64, f64) {
    assert_eq!(growth.len(), residual.len(), "ratio test length mismatch");
    let mut lo = f64::NEG_INFINITY;
    let mut hi = f64::INFINITY;
    for (&g, &r) in growth.iter().zip(residual) {
        let s = r + tol;
        if g.abs() <= 1e-14 {
            if s < 0.0 {
                return (0.0, 0.0);
            }
        } else if g > 0.0 {
            hi = hi.min(s / g);
        } else {
            lo = lo.max(s / g);
        }
    }
    if lo > hi {
        return (0.0, 0.0);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive_for_all_remainders() {
        for n in 0..13usize {
            let a: Vec<f64> = (0..n).map(|i| i as f64 + 0.5).collect();
            let b: Vec<f64> = (0..n).map(|i| 2.0 - i as f64).collect();
            let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot(&a, &b) - naive).abs() < 1e-12, "n = {n}");
        }
    }

    #[test]
    fn axpy_and_scale() {
        let mut y = vec![1.0, 2.0, 3.0];
        axpy(&mut y, 2.0, &[1.0, 0.0, -1.0]);
        assert_eq!(y, vec![3.0, 2.0, 1.0]);
        scale_in_place(&mut y, -1.0);
        assert_eq!(y, vec![-3.0, -2.0, -1.0]);
    }

    #[test]
    fn mat_vec_into_matches_row_dots() {
        // 3x2 matrix [[1,2],[3,4],[5,6]] times [1,-1].
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut out = [0.0; 3];
        mat_vec_into(&a, 3, &[1.0, -1.0], &mut out);
        assert_eq!(out, [-1.0, -1.0, -1.0]);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    /// Expands a CSR row to dense and checks the sparse reduction is bitwise
    /// equal to the dense one, across lengths that exercise every tail size.
    #[test]
    fn sparse_row_dot_is_bitwise_dense() {
        for n in 1..13usize {
            let x: Vec<f64> = (0..n).map(|i| 0.3 * i as f64 - 1.7).collect();
            // Nonzeros at every other column with mixed signs.
            let cols: Vec<u32> = (0..n as u32).step_by(2).collect();
            let vals: Vec<f64> = cols.iter().map(|&c| 1.5 - c as f64).collect();
            let mut dense = vec![0.0; n];
            for (&c, &v) in cols.iter().zip(&vals) {
                dense[c as usize] = v;
            }
            let s = sparse_row_dot(&cols, &vals, &x);
            let d = dot(&dense, &x);
            assert_eq!(s.to_bits(), d.to_bits(), "n = {n}: sparse {s} vs dense {d}");
        }
    }

    /// Exhausts every column pattern with up to three nonzeros (the shortcut
    /// arms of [`sparse_row_dot`]) over lengths covering every tail size and
    /// value sets that include exact signed zeros, checking bitwise equality
    /// with the dense reduction.
    #[test]
    fn sparse_row_dot_shortcuts_are_bitwise_dense() {
        let value_sets: [[f64; 3]; 5] = [
            [1.25, -2.5, 3.75],
            [-0.0, -0.0, -0.0],
            [0.0, -0.0, 1.0],
            [1e300, -1e300, 1.0],
            [-1.5, 1.5, -0.0],
        ];
        for n in 1..=11usize {
            let x: Vec<f64> = (0..n).map(|i| 0.7 * i as f64 - 2.1).collect();
            let mut patterns: Vec<Vec<usize>> = vec![vec![]];
            for c1 in 0..n {
                patterns.push(vec![c1]);
                for c2 in c1 + 1..n {
                    patterns.push(vec![c1, c2]);
                    for c3 in c2 + 1..n {
                        patterns.push(vec![c1, c2, c3]);
                    }
                }
            }
            for pat in &patterns {
                for values in &value_sets {
                    let cols: Vec<u32> = pat.iter().map(|&c| c as u32).collect();
                    let vals: Vec<f64> = values[..pat.len()].to_vec();
                    let mut dense = vec![0.0; n];
                    for (&c, &v) in pat.iter().zip(&vals) {
                        dense[c] = v;
                    }
                    let s = sparse_row_dot(&cols, &vals, &x);
                    let d = dot(&dense, &x);
                    assert_eq!(
                        s.to_bits(),
                        d.to_bits(),
                        "n = {n}, cols = {pat:?}, vals = {vals:?}: sparse {s} vs dense {d}"
                    );
                }
            }
        }
    }

    /// Class-major reorder of a dense row plus its four segment ends, the
    /// construction-time transform the geometry layer applies for `nnz ≥ 4`
    /// rows.
    fn class_major(dense: &[f64]) -> (Vec<u32>, Vec<f64>, [u32; 4]) {
        let n4 = dense.len() - dense.len() % 4;
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        let mut seg = [0u32; 4];
        for class in 0..4 {
            for j in (class..n4).step_by(4) {
                if dense[j] != 0.0 {
                    cols.push(j as u32);
                    vals.push(dense[j]);
                }
            }
            seg[class] = cols.len() as u32;
        }
        for (j, &v) in dense.iter().enumerate().skip(n4) {
            if v != 0.0 {
                cols.push(j as u32);
                vals.push(v);
            }
        }
        (cols, vals, seg)
    }

    /// The classed reduction over class-major rows is bitwise equal to the
    /// dense reduction, across lengths covering every tail size and sparsity
    /// patterns with 4+ nonzeros (the rows the classed kernel serves).
    #[test]
    fn sparse_row_dot_classed_is_bitwise_dense() {
        for n in 4..21usize {
            let mut x: Vec<f64> = (0..n).map(|i| 0.31 * i as f64 - 2.9).collect();
            // An exact zero in x makes some stored products signed zeros.
            x[3] = 0.0;
            for stride in 1..4usize {
                let mut dense = vec![0.0; n];
                for j in (0..n).step_by(stride) {
                    dense[j] = 1.7 - 0.9 * j as f64;
                }
                let (cols, vals, seg) = class_major(&dense);
                if cols.len() < 4 {
                    continue;
                }
                let s = sparse_row_dot_classed(&cols, &vals, &seg, &x);
                let d = dot(&dense, &x);
                assert_eq!(
                    s.to_bits(),
                    d.to_bits(),
                    "n = {n}, stride = {stride}: classed {s} vs dense {d}"
                );
            }
        }
    }

    #[test]
    fn sparse_mat_vec_matches_dense() {
        // 3x5: rows with 0, 1 and 3 nonzeros.
        let row_ptr = [0usize, 0, 1, 4];
        let cols = [2u32, 0, 3, 4];
        let vals = [2.5, -1.0, 4.0, 0.5];
        let x = [1.0, -2.0, 3.0, 0.25, 8.0];
        let mut dense = vec![0.0; 15];
        dense[1 * 5 + 2] = 2.5;
        dense[2 * 5] = -1.0;
        dense[2 * 5 + 3] = 4.0;
        dense[2 * 5 + 4] = 0.5;
        let mut out_s = [0.0; 3];
        let mut out_d = [0.0; 3];
        sparse_mat_vec_into(&row_ptr, &cols, &vals, &x, &mut out_s);
        mat_vec_into(&dense, 3, &x, &mut out_d);
        for (s, d) in out_s.iter().zip(&out_d) {
            assert_eq!(s.to_bits(), d.to_bits());
        }
    }

    #[test]
    fn axis_mat_vec_matches_dense_including_signed_zero() {
        let axes = [1u32, 0, 2];
        let coeffs = [-1.0, 2.0, -3.0];
        // x[2] = 0.0 makes the third product -0.0; the dense reduction
        // canonicalizes it to +0.0 and the axis kernel must agree.
        let x = [4.0, -0.5, 0.0];
        let mut dense = vec![0.0; 9];
        dense[1] = -1.0;
        dense[3] = 2.0;
        dense[8] = -3.0;
        let mut out_a = [0.0; 3];
        let mut out_d = [0.0; 3];
        axis_mat_vec_into(&axes, &coeffs, &x, &mut out_a);
        mat_vec_into(&dense, 3, &x, &mut out_d);
        for (a, d) in out_a.iter().zip(&out_d) {
            assert_eq!(a.to_bits(), d.to_bits());
        }
    }

    #[test]
    fn chord_from_residuals_ratio_test() {
        // The unit interval in 1D: x <= 1 (growth 1, residual 1 - 0.25) and
        // -x <= 0 (growth -1, residual 0.25), from the point x = 0.25.
        let (lo, hi) = chord_from_residuals(&[1.0, -1.0], &[0.75, 0.25], 0.0);
        assert!((lo + 0.25).abs() < 1e-12 && (hi - 0.75).abs() < 1e-12);
        // A parallel constraint with negative slack empties the chord.
        assert_eq!(
            chord_from_residuals(&[0.0, 1.0], &[-1.0, 1.0], 0.0),
            (0.0, 0.0)
        );
        // Contradictory constraints empty it too.
        assert_eq!(
            chord_from_residuals(&[1.0, -1.0], &[-2.0, -2.0], 0.0),
            (0.0, 0.0)
        );
        // No finite cuts leave the interval unbounded.
        let (lo, hi) = chord_from_residuals(&[0.0], &[1.0], 0.0);
        assert!(lo == f64::NEG_INFINITY && hi == f64::INFINITY);
    }
}
