//! In-place slice kernels for the random-walk hot path.
//!
//! The walk engine in `cdb-sampler` performs a handful of dense operations
//! per step — one matrix–vector product, a few dots and one `y += a·x`
//! update — millions of times per second. These kernels operate on plain
//! `&[f64]` slices so the oracle layer can run them directly over cached
//! flat constraint matrices without constructing [`crate::Vector`] or
//! [`crate::Matrix`] temporaries, and they are written to keep the inner
//! loops allocation-free and auto-vectorizable (four independent
//! accumulators for the reductions).

/// Dot product of two equal-length slices, unrolled four-wide so the
/// reduction runs on independent accumulators.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot kernel length mismatch");
    let mut acc = [0.0f64; 4];
    let (a4, a_rest) = a.split_at(a.len() - a.len() % 4);
    let (b4, b_rest) = b.split_at(b.len() - b.len() % 4);
    for (ca, cb) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    let mut tail = 0.0;
    for (x, y) in a_rest.iter().zip(b_rest) {
        tail += x * y;
    }
    (acc[0] + acc[2]) + (acc[1] + acc[3]) + tail
}

/// The classical `axpy` update `y ← y + a·x`, in place.
#[inline]
pub fn axpy(y: &mut [f64], a: f64, x: &[f64]) {
    assert_eq!(y.len(), x.len(), "axpy kernel length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// Scales a slice in place: `y ← s·y`.
#[inline]
pub fn scale_in_place(y: &mut [f64], s: f64) {
    for yi in y.iter_mut() {
        *yi *= s;
    }
}

/// Dense matrix–vector product `out ← A·x` for a row-major flat matrix with
/// `rows` rows and `x.len()` columns, written into a caller-owned buffer.
#[inline]
pub fn mat_vec_into(a: &[f64], rows: usize, x: &[f64], out: &mut [f64]) {
    let cols = x.len();
    assert_eq!(a.len(), rows * cols, "mat_vec flat buffer length mismatch");
    assert_eq!(out.len(), rows, "mat_vec output length mismatch");
    for (i, o) in out.iter_mut().enumerate() {
        *o = dot(&a[i * cols..(i + 1) * cols], x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive_for_all_remainders() {
        for n in 0..13usize {
            let a: Vec<f64> = (0..n).map(|i| i as f64 + 0.5).collect();
            let b: Vec<f64> = (0..n).map(|i| 2.0 - i as f64).collect();
            let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot(&a, &b) - naive).abs() < 1e-12, "n = {n}");
        }
    }

    #[test]
    fn axpy_and_scale() {
        let mut y = vec![1.0, 2.0, 3.0];
        axpy(&mut y, 2.0, &[1.0, 0.0, -1.0]);
        assert_eq!(y, vec![3.0, 2.0, 1.0]);
        scale_in_place(&mut y, -1.0);
        assert_eq!(y, vec![-3.0, -2.0, -1.0]);
    }

    #[test]
    fn mat_vec_into_matches_row_dots() {
        // 3x2 matrix [[1,2],[3,4],[5,6]] times [1,-1].
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut out = [0.0; 3];
        mat_vec_into(&a, 3, &[1.0, -1.0], &mut out);
        assert_eq!(out, [-1.0, -1.0, -1.0]);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
