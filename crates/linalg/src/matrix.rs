//! Dense row-major floating-point matrices.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use crate::{Cholesky, LinalgError, Lu, Vector};

/// A dense `f64` matrix stored in row-major order.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn diagonal(diag: &[f64]) -> Self {
        let mut m = Matrix::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Builds a matrix from row slices; all rows must have the same length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix from a flat row-major buffer.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "flat buffer has wrong length");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy of column `j`.
    pub fn column(&self, j: usize) -> Vector {
        Vector::from((0..self.rows).map(|i| self[(i, j)]).collect::<Vec<_>>())
    }

    /// Copy of row `i` as a [`Vector`].
    pub fn row_vector(&self, i: usize) -> Vector {
        Vector::from(self.row(i))
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix–vector product.
    pub fn mul_vector(&self, v: &Vector) -> Vector {
        let mut out = Vector::zeros(self.rows);
        self.mul_vector_into(v, &mut out);
        out
    }

    /// Matrix–vector product written into a caller-owned buffer (`out` must
    /// already have `rows` components) — the allocation-free variant used by
    /// the walk hot path.
    pub fn mul_vector_into(&self, v: &Vector, out: &mut Vector) {
        assert_eq!(self.cols, v.dim(), "matrix-vector dimension mismatch");
        crate::kernels::mat_vec_into(&self.data, self.rows, v.as_slice(), out.as_mut_slice());
    }

    /// Matrix–matrix product.
    pub fn mul_matrix(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matrix-matrix dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Scales every entry.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }

    /// LU factorization with partial pivoting.
    pub fn lu(&self) -> Result<Lu, LinalgError> {
        Lu::new(self)
    }

    /// Cholesky factorization of a symmetric positive definite matrix.
    pub fn cholesky(&self) -> Result<Cholesky, LinalgError> {
        Cholesky::new(self)
    }

    /// Solves `A x = b` via LU.
    pub fn solve(&self, b: &Vector) -> Result<Vector, LinalgError> {
        self.lu()?.solve(b)
    }

    /// Determinant via LU.
    pub fn determinant(&self) -> f64 {
        match self.lu() {
            Ok(lu) => lu.determinant(),
            Err(_) => 0.0,
        }
    }

    /// Inverse via LU.
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        let lu = self.lu()?;
        let n = self.rows;
        let mut out = Matrix::zeros(n, n);
        for j in 0..n {
            let col = lu.solve(&Vector::basis(n, j))?;
            for i in 0..n {
                out[(i, j)] = col[i];
            }
        }
        Ok(out)
    }

    /// Outer product `u vᵀ`.
    pub fn outer(u: &Vector, v: &Vector) -> Matrix {
        let mut m = Matrix::zeros(u.dim(), v.dim());
        for i in 0..u.dim() {
            for j in 0..v.dim() {
                m[(i, j)] = u[i] * v[j];
            }
        }
        m
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Returns `true` if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Sample covariance matrix of a set of points (rows of the input are
    /// ignored; points are given as vectors). Returns `None` when fewer than
    /// two points are supplied.
    pub fn covariance(points: &[Vector]) -> Option<Matrix> {
        if points.len() < 2 {
            return None;
        }
        let d = points[0].dim();
        let n = points.len() as f64;
        let mut mean = Vector::zeros(d);
        for p in points {
            mean += p;
        }
        mean = mean.scale(1.0 / n);
        let mut cov = Matrix::zeros(d, d);
        for p in points {
            let c = p - &mean;
            for i in 0..d {
                for j in 0..d {
                    cov[(i, j)] += c[i] * c[j];
                }
            }
        }
        Some(cov.scale(1.0 / (n - 1.0)))
    }

    /// Mean of a set of points.
    pub fn mean(points: &[Vector]) -> Option<Vector> {
        if points.is_empty() {
            return None;
        }
        let d = points[0].dim();
        let mut mean = Vector::zeros(d);
        for p in points {
            mean += p;
        }
        Some(mean.scale(1.0 / points.len() as f64))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.mul_matrix(rhs)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            writeln!(f, "  {:?}", self.row(i))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_diagonal() {
        let id = Matrix::identity(3);
        let v = Vector::from(vec![1.0, 2.0, 3.0]);
        assert_eq!(id.mul_vector(&v).as_slice(), v.as_slice());
        let d = Matrix::diagonal(&[2.0, 3.0]);
        assert_eq!(
            d.mul_vector(&Vector::from(vec![1.0, 1.0])).as_slice(),
            &[2.0, 3.0]
        );
    }

    #[test]
    fn multiplication_and_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let c = a.mul_matrix(&b);
        assert_eq!(c.row(0), &[2.0, 1.0]);
        assert_eq!(c.row(1), &[4.0, 3.0]);
        let t = a.transpose();
        assert_eq!(t.row(0), &[1.0, 3.0]);
        assert_eq!(t.column(0).as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn solve_and_inverse() {
        let a = Matrix::from_rows(&[
            vec![2.0, 1.0, 0.0],
            vec![1.0, 3.0, 1.0],
            vec![0.0, 1.0, 4.0],
        ]);
        let b = Vector::from(vec![1.0, 2.0, 3.0]);
        let x = a.solve(&b).unwrap();
        let back = a.mul_vector(&x);
        for i in 0..3 {
            assert!((back[i] - b[i]).abs() < 1e-10);
        }
        let inv = a.inverse().unwrap();
        let prod = a.mul_matrix(&inv);
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expected).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn determinant_known_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert!((a.determinant() + 2.0).abs() < 1e-12);
        assert!((Matrix::identity(4).determinant() - 1.0).abs() < 1e-12);
        let singular = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(singular.determinant().abs() < 1e-12);
    }

    #[test]
    fn covariance_of_axis_aligned_cloud() {
        let pts: Vec<Vector> = vec![
            Vector::from(vec![0.0, 0.0]),
            Vector::from(vec![2.0, 0.0]),
            Vector::from(vec![0.0, 4.0]),
            Vector::from(vec![2.0, 4.0]),
        ];
        let cov = Matrix::covariance(&pts).unwrap();
        // x values {0,2} have variance 4/3; y values {0,4} variance 16/3.
        assert!((cov[(0, 0)] - 4.0 / 3.0).abs() < 1e-12);
        assert!((cov[(1, 1)] - 16.0 / 3.0).abs() < 1e-12);
        assert!(cov[(0, 1)].abs() < 1e-12);
        assert!(Matrix::covariance(&pts[..1]).is_none());
        assert_eq!(Matrix::mean(&pts).unwrap().as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn outer_product() {
        let u = Vector::from(vec![1.0, 2.0]);
        let v = Vector::from(vec![3.0, 4.0, 5.0]);
        let m = Matrix::outer(&u, &v);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(1, 2)], 10.0);
    }

    #[test]
    fn inverse_of_singular_fails() {
        let singular = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(singular.inverse().is_err());
    }
}
