//! Property-based tests for the dense linear algebra kernels.

use cdb_linalg::{AffineMap, Matrix, Vector};
use proptest::prelude::*;

/// Strategy producing well-conditioned square matrices: diagonally dominant
/// with bounded entries, so LU and inverse are numerically stable.
fn dominant_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-5.0f64..5.0, n * n).prop_map(move |vals| {
        let mut m = Matrix::from_flat(n, n, vals);
        for i in 0..n {
            let row_sum: f64 = (0..n).filter(|&j| j != i).map(|j| m[(i, j)].abs()).sum();
            m[(i, i)] = row_sum + 1.0 + m[(i, i)].abs();
        }
        m
    })
}

fn vector(n: usize) -> impl Strategy<Value = Vector> {
    proptest::collection::vec(-10.0f64..10.0, n).prop_map(Vector::from)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solve_roundtrip_3(a in dominant_matrix(3), b in vector(3)) {
        let x = a.solve(&b).unwrap();
        let back = a.mul_vector(&x);
        for i in 0..3 {
            prop_assert!((back[i] - b[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn solve_roundtrip_6(a in dominant_matrix(6), b in vector(6)) {
        let x = a.solve(&b).unwrap();
        let back = a.mul_vector(&x);
        for i in 0..6 {
            prop_assert!((back[i] - b[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn inverse_is_two_sided(a in dominant_matrix(4)) {
        let inv = a.inverse().unwrap();
        let left = inv.mul_matrix(&a);
        let right = a.mul_matrix(&inv);
        for i in 0..4 {
            for j in 0..4 {
                let e = if i == j { 1.0 } else { 0.0 };
                prop_assert!((left[(i, j)] - e).abs() < 1e-6);
                prop_assert!((right[(i, j)] - e).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn determinant_is_multiplicative(a in dominant_matrix(3), b in dominant_matrix(3)) {
        let dab = a.mul_matrix(&b).determinant();
        let dadb = a.determinant() * b.determinant();
        prop_assert!((dab - dadb).abs() <= 1e-6 * dadb.abs().max(1.0));
    }

    #[test]
    fn transpose_is_involution(a in dominant_matrix(5)) {
        let t = a.transpose().transpose();
        for i in 0..5 {
            for j in 0..5 {
                prop_assert_eq!(t[(i, j)], a[(i, j)]);
            }
        }
    }

    #[test]
    fn cholesky_reconstructs_spd(a in dominant_matrix(4)) {
        // A Aᵀ + I is symmetric positive definite.
        let spd = &a.mul_matrix(&a.transpose()) + &Matrix::identity(4);
        let ch = spd.cholesky().unwrap();
        let l = ch.factor();
        let back = l.mul_matrix(&l.transpose());
        for i in 0..4 {
            for j in 0..4 {
                prop_assert!((back[(i, j)] - spd[(i, j)]).abs() < 1e-6 * spd[(i, j)].abs().max(1.0));
            }
        }
    }

    #[test]
    fn affine_roundtrip(a in dominant_matrix(3), b in vector(3), x in vector(3)) {
        let map = AffineMap::new(a, b).unwrap();
        let y = map.apply(&x);
        let back = map.apply_inverse(&y);
        for i in 0..3 {
            prop_assert!((back[i] - x[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn dot_product_cauchy_schwarz(u in vector(5), v in vector(5)) {
        prop_assert!(u.dot(&v).abs() <= u.norm() * v.norm() + 1e-9);
    }

    #[test]
    fn triangle_inequality(u in vector(5), v in vector(5)) {
        prop_assert!((&u + &v).norm() <= u.norm() + v.norm() + 1e-9);
    }
}
