//! Hull-of-samples reconstruction of a convex set (Lemma 4.1).

use rand::Rng;

use cdb_constraint::GeneralizedTuple;
use cdb_geometry::hull::hull_to_hpolytope;
use cdb_geometry::HPolytope;
use cdb_linalg::Vector;
use cdb_sampler::{ConvexBody, DfkSampler, GeneratorParams};

/// Errors produced by the reconstruction layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ReconstructionError {
    /// The relation to reconstruct is not a well-bounded convex relation.
    NotObservable,
    /// The sampled points were affinely degenerate, so no full-dimensional
    /// hull exists (the target set probably has measure zero).
    DegenerateSamples,
    /// The sampler failed to produce enough points.
    NotEnoughSamples {
        /// Points requested.
        requested: usize,
        /// Points actually produced.
        produced: usize,
    },
    /// The query is outside the positive existential fragment handled by
    /// Algorithms 4 and 5.
    UnsupportedQuery(String),
    /// An error bubbled up from the symbolic layer (unknown relation, arity
    /// mismatch, …).
    Constraint(String),
}

impl std::fmt::Display for ReconstructionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReconstructionError::NotObservable => write!(f, "relation is not observable"),
            ReconstructionError::DegenerateSamples => {
                write!(f, "sampled points are affinely degenerate")
            }
            ReconstructionError::NotEnoughSamples {
                requested,
                produced,
            } => {
                write!(f, "only {produced} of {requested} samples were produced")
            }
            ReconstructionError::UnsupportedQuery(msg) => write!(f, "unsupported query: {msg}"),
            ReconstructionError::Constraint(msg) => write!(f, "constraint layer error: {msg}"),
        }
    }
}

impl std::error::Error for ReconstructionError {}

/// Ceiling applied when the Lemma 4.1 bound is used as an implicit default.
///
/// The raw bound easily reaches tens of thousands of samples for modest
/// `(ε, δ)`, and every sample behind a projection generator costs `Θ(1/γ)`
/// rejection rounds of random walks — minutes of wall clock for a quality gain
/// the hull cannot realize in low dimension. Callers that want the full
/// theoretical count pass `n_samples` explicitly.
pub const DEFAULT_SAMPLE_CAP: usize = 2_000;

/// The sample count used when the caller does not pass one explicitly: the
/// Lemma 4.1 bound with `r = 2^dim` vertices, limited by
/// [`DEFAULT_SAMPLE_CAP`].
pub fn default_hull_sample_size(dim: usize, eps: f64, delta: f64) -> usize {
    hull_sample_size(1 << dim.min(16), dim, eps, delta).min(DEFAULT_SAMPLE_CAP)
}

/// The sample size of Lemma 4.1: with
/// `N = O(4 r² d² / (ε⁴ d^{2d−2}) · ln(1/δ))` uniform samples, the convex
/// hull is an ε-approximation of a polytope with `r` vertices with
/// probability at least `1 − δ`.
///
/// The bound collapses quickly with growing `d` (the `d^{2d−2}` denominator),
/// so the returned value is clamped to a practical range `[d + 1, 200 000]`.
pub fn hull_sample_size(r_vertices: usize, dim: usize, eps: f64, delta: f64) -> usize {
    assert!(eps > 0.0 && eps < 1.0 && delta > 0.0 && delta < 1.0);
    let r = r_vertices.max(dim + 1) as f64;
    let d = dim.max(1) as f64;
    let denom = eps.powi(4) * d.powf(2.0 * d - 2.0);
    let n = (4.0 * r * r * d * d / denom) * (1.0 / delta).ln();
    (n.ceil() as usize).clamp(dim + 1, 200_000)
}

/// Hull-of-samples `(ε, δ)`-estimator for one well-bounded convex relation.
#[derive(Debug)]
pub struct ConvexReconstructor {
    params: GeneratorParams,
    eps: f64,
    delta: f64,
}

impl ConvexReconstructor {
    /// Creates a reconstructor with the given generator parameters and
    /// target reconstruction quality `(ε, δ)`.
    pub fn new(params: GeneratorParams, eps: f64, delta: f64) -> Self {
        ConvexReconstructor { params, eps, delta }
    }

    /// Reconstructs a convex relation from `n_samples` almost-uniform points
    /// (when `n_samples` is `None`, the Lemma 4.1 bound with `r = 2^d`
    /// vertices is used). Returns the hull as an H-polytope.
    pub fn reconstruct_tuple<R: Rng + ?Sized>(
        &self,
        tuple: &GeneralizedTuple,
        n_samples: Option<usize>,
        rng: &mut R,
    ) -> Result<HPolytope, ReconstructionError> {
        let body = ConvexBody::from_tuple(tuple).ok_or(ReconstructionError::NotObservable)?;
        let sampler = DfkSampler::new(body, self.params, rng);
        let d = tuple.arity();
        let n = n_samples.unwrap_or_else(|| default_hull_sample_size(d, self.eps, self.delta));
        self.hull_of_samples(&sampler.sample_many(n, rng), n)
    }

    /// Builds the hull polytope from already-generated samples.
    pub fn hull_of_samples(
        &self,
        samples: &[Vec<f64>],
        requested: usize,
    ) -> Result<HPolytope, ReconstructionError> {
        if samples.len() < 2 || samples.len() * 2 < requested {
            return Err(ReconstructionError::NotEnoughSamples {
                requested,
                produced: samples.len(),
            });
        }
        let points: Vec<Vector> = samples.iter().map(|p| Vector::from(p.as_slice())).collect();
        hull_to_hpolytope(&points).ok_or(ReconstructionError::DegenerateSamples)
    }

    /// The `(ε, δ)` targets of the reconstruction.
    pub fn quality(&self) -> (f64, f64) {
        (self.eps, self.delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_geometry::volume::{polytope_volume, symmetric_difference_volume};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_size_bound_shapes() {
        // More vertices or a tighter ε need more samples.
        assert!(hull_sample_size(16, 2, 0.1, 0.1) >= hull_sample_size(4, 2, 0.1, 0.1));
        assert!(hull_sample_size(4, 2, 0.05, 0.1) >= hull_sample_size(4, 2, 0.2, 0.1));
        // Never below d+1, never above the cap.
        assert!(hull_sample_size(4, 3, 0.9, 0.9) >= 4);
        assert!(hull_sample_size(1000, 2, 0.01, 0.001) <= 200_000);
    }

    #[test]
    fn reconstruct_a_square() {
        let square = GeneralizedTuple::from_box_f64(&[0.0, 0.0], &[1.0, 1.0]);
        let rec = ConvexReconstructor::new(GeneratorParams::fast(), 0.2, 0.2);
        let mut rng = StdRng::seed_from_u64(91);
        let hull = rec.reconstruct_tuple(&square, Some(400), &mut rng).unwrap();
        // The hull is inside the square and close to it in volume.
        let vol = polytope_volume(&hull);
        assert!(vol > 0.75 && vol <= 1.0 + 1e-6, "hull volume {vol}");
        let sd = symmetric_difference_volume(&[square.to_hpolytope()], &[hull]);
        assert!(sd < 0.25, "symmetric difference {sd}");
    }

    #[test]
    fn reconstruction_improves_with_more_samples() {
        let square = GeneralizedTuple::from_box_f64(&[0.0, 0.0], &[2.0, 2.0]);
        let rec = ConvexReconstructor::new(GeneratorParams::fast(), 0.2, 0.2);
        let mut rng = StdRng::seed_from_u64(92);
        let rough = rec.reconstruct_tuple(&square, Some(30), &mut rng).unwrap();
        let fine = rec.reconstruct_tuple(&square, Some(500), &mut rng).unwrap();
        let truth = square.to_hpolytope();
        let sd_rough = symmetric_difference_volume(&[truth.clone()], &[rough]);
        let sd_fine = symmetric_difference_volume(&[truth], &[fine]);
        assert!(sd_fine < sd_rough, "fine {sd_fine} vs rough {sd_rough}");
    }

    #[test]
    fn degenerate_inputs_are_reported() {
        let rec = ConvexReconstructor::new(GeneratorParams::fast(), 0.2, 0.2);
        // Identical points have no full-dimensional hull.
        let degenerate = vec![vec![1.0, 1.0]; 50];
        assert_eq!(
            rec.hull_of_samples(&degenerate, 50),
            Err(ReconstructionError::DegenerateSamples)
        );
        // Too few points.
        assert!(matches!(
            rec.hull_of_samples(&[vec![0.0, 0.0]], 100),
            Err(ReconstructionError::NotEnoughSamples { .. })
        ));
        // Unbounded tuples are not observable.
        use cdb_constraint::Atom;
        let halfplane = GeneralizedTuple::new(2, vec![Atom::le_from_ints(&[1, 0], 0)]);
        let mut rng = StdRng::seed_from_u64(93);
        assert_eq!(
            rec.reconstruct_tuple(&halfplane, Some(10), &mut rng),
            Err(ReconstructionError::NotObservable)
        );
    }
}
