//! Query reconstruction: Algorithm 3 (projection queries, Proposition 4.3)
//! and Algorithms 4/5 (positive existential queries, Theorem 4.4).

use rand::Rng;

use cdb_constraint::{
    Atom, CompOp, Database, Formula, GeneralizedRelation, GeneralizedTuple, LinTerm,
};
use cdb_geometry::hull::hull_to_hpolytope;
use cdb_geometry::HPolytope;
use cdb_linalg::Vector;
use cdb_num::Rational;
use cdb_sampler::{GeneratorParams, ProjectionGenerator, RelationGenerator};

use crate::convex::{default_hull_sample_size, ReconstructionError};

/// Converts a reconstructed hull polytope back into a generalized tuple so
/// the result can be fed back into the constraint layer.
fn polytope_to_tuple(p: &HPolytope) -> GeneralizedTuple {
    let arity = p.dim();
    let atoms = p
        .halfspaces()
        .iter()
        .map(|h| {
            let coeffs: Vec<Rational> = h
                .normal()
                .iter()
                .map(|&c| Rational::from_f64(c).unwrap_or_else(Rational::zero))
                .collect();
            let constant = -Rational::from_f64(h.offset()).unwrap_or_else(Rational::zero);
            Atom::new(LinTerm::new(coeffs, constant), CompOp::Le)
        })
        .collect();
    GeneralizedTuple::new(arity, atoms)
}

/// Algorithm 3: `(ε, δ)`-estimation of a projection query
/// `φ(x_1, …, x_e) ≡ ∃ x_{e+1} … x_{e+d} R(x_1, …, x_{e+d})` over a convex
/// relation `R`, by sampling the projection with Algorithm 2 and taking the
/// convex hull of the samples.
///
/// The symbolic alternative is Fourier–Motzkin elimination with its
/// `O(2^{2^k})` blow-up; the sampling estimator costs `O(2^{e/2}·poly(d+e))`
/// (the hull is computed only in the small result dimension `e`).
#[derive(Debug)]
pub struct ProjectionQueryEstimator {
    params: GeneratorParams,
    eps: f64,
    delta: f64,
}

impl ProjectionQueryEstimator {
    /// Creates the estimator.
    pub fn new(params: GeneratorParams, eps: f64, delta: f64) -> Self {
        ProjectionQueryEstimator { params, eps, delta }
    }

    /// Estimates `proj_keep(tuple)` as an H-polytope in dimension
    /// `keep.len()`. `n_samples` overrides the Lemma 4.1 sample size.
    pub fn estimate<R: Rng + ?Sized>(
        &self,
        tuple: &GeneralizedTuple,
        keep: &[usize],
        n_samples: Option<usize>,
        rng: &mut R,
    ) -> Result<HPolytope, ReconstructionError> {
        let mut generator = ProjectionGenerator::new(tuple, keep, self.params, rng)
            .map_err(|e| ReconstructionError::UnsupportedQuery(e.to_string()))?;
        let e = keep.len();
        let n = n_samples.unwrap_or_else(|| default_hull_sample_size(e, self.eps, self.delta));
        let samples = generator.sample_many(n, rng);
        if samples.len() < e + 1 || samples.len() * 2 < n {
            return Err(ReconstructionError::NotEnoughSamples {
                requested: n,
                produced: samples.len(),
            });
        }
        let points: Vec<Vector> = samples.iter().map(|p| Vector::from(p.as_slice())).collect();
        hull_to_hpolytope(&points).ok_or(ReconstructionError::DegenerateSamples)
    }

    /// Estimates the projection and returns it as a generalized relation.
    pub fn estimate_relation<R: Rng + ?Sized>(
        &self,
        tuple: &GeneralizedTuple,
        keep: &[usize],
        n_samples: Option<usize>,
        rng: &mut R,
    ) -> Result<GeneralizedRelation, ReconstructionError> {
        let hull = self.estimate(tuple, keep, n_samples, rng)?;
        Ok(GeneralizedRelation::from_tuple(polytope_to_tuple(&hull)))
    }
}

/// One `∃`-block of a positive existential query: the quantified variables
/// and the quantifier-free positive body.
#[derive(Debug, Clone)]
struct Block {
    exists: Vec<usize>,
    body: Formula,
}

/// Algorithms 4 and 5: guaranteed `(ε, δ)`-estimation of a positive
/// existential query `Ψ ≡ ∨_i φ_i`, where each `φ_i` is built from relation
/// and linear atoms by conjunction and existential quantification. Each
/// `φ_i` is sampled with the composed generators (intersection + projection),
/// its samples are hulled, and the result is the union of the hulls.
#[derive(Debug)]
pub struct PositiveQueryEstimator {
    params: GeneratorParams,
    eps: f64,
    delta: f64,
    samples_per_piece: Option<usize>,
}

impl PositiveQueryEstimator {
    /// Creates the estimator.
    pub fn new(params: GeneratorParams, eps: f64, delta: f64) -> Self {
        PositiveQueryEstimator {
            params,
            eps,
            delta,
            samples_per_piece: None,
        }
    }

    /// Overrides the number of samples drawn per convex piece (by default the
    /// Lemma 4.1 bound capped by
    /// [`crate::DEFAULT_SAMPLE_CAP`]). Use this to pay for the full
    /// theoretical sample count when the default cap is too coarse.
    pub fn with_samples_per_piece(mut self, n: usize) -> Self {
        self.samples_per_piece = Some(n);
        self
    }

    /// Splits a positive existential query into its `∨`-blocks.
    fn decompose(query: &Formula) -> Result<Vec<Block>, ReconstructionError> {
        if !query.is_existential_positive() {
            return Err(ReconstructionError::UnsupportedQuery(
                "the query must be positive existential (Theorem 4.4)".into(),
            ));
        }
        fn walk(f: &Formula, out: &mut Vec<Block>) -> Result<(), ReconstructionError> {
            match f {
                Formula::Or(parts) => {
                    for p in parts {
                        walk(p, out)?;
                    }
                    Ok(())
                }
                Formula::Exists(vars, body) => {
                    if !body.is_quantifier_free() {
                        // Nested quantifiers: merge them into a single block.
                        let mut inner = Vec::new();
                        walk(body, &mut inner)?;
                        for b in inner {
                            let mut exists = vars.clone();
                            exists.extend(b.exists);
                            out.push(Block {
                                exists,
                                body: b.body,
                            });
                        }
                        return Ok(());
                    }
                    out.push(Block {
                        exists: vars.clone(),
                        body: (**body).clone(),
                    });
                    Ok(())
                }
                other => {
                    if !other.is_quantifier_free() {
                        return Err(ReconstructionError::UnsupportedQuery(
                            "quantifiers may only appear at the top of each disjunct".into(),
                        ));
                    }
                    out.push(Block {
                        exists: Vec::new(),
                        body: other.clone(),
                    });
                    Ok(())
                }
            }
        }
        let mut blocks = Vec::new();
        walk(query, &mut blocks)?;
        Ok(blocks)
    }

    /// Estimates the query result over the database, returning a generalized
    /// relation of the given output arity (free variables `x_0 … x_{arity−1}`).
    pub fn estimate<R: Rng + ?Sized>(
        &self,
        db: &Database,
        query: &Formula,
        output_arity: usize,
        rng: &mut R,
    ) -> Result<GeneralizedRelation, ReconstructionError> {
        let blocks = Self::decompose(query)?;
        let mut result_tuples: Vec<GeneralizedTuple> = Vec::new();
        let n = self
            .samples_per_piece
            .unwrap_or_else(|| default_hull_sample_size(output_arity, self.eps, self.delta));

        for block in blocks {
            // Resolve relation atoms symbolically (cheap: no quantifier
            // elimination happens here) and build the block's DNF over the
            // ambient variables (free + quantified).
            let resolved = db
                .resolve(&block.body)
                .map_err(|e| ReconstructionError::Constraint(e.to_string()))?;
            let ambient = resolved
                .min_arity()
                .max(output_arity)
                .max(block.exists.iter().map(|v| v + 1).max().unwrap_or(0));
            let relation = GeneralizedRelation::from_formula(ambient, &resolved)
                .map_err(|e| ReconstructionError::Constraint(e.to_string()))?;
            let keep: Vec<usize> = (0..output_arity).collect();

            // Each convex piece of the block is sampled through the
            // projection generator (Algorithm 2) and hulled (Algorithm 4).
            for tuple in relation.tuples() {
                if tuple.closure_is_empty() {
                    continue;
                }
                if block.exists.is_empty() && ambient == output_arity {
                    // No quantifier: the tuple itself is already exact.
                    result_tuples.push(tuple.clone());
                    continue;
                }
                let mut generator = match ProjectionGenerator::new(tuple, &keep, self.params, rng) {
                    Ok(g) => g,
                    // Degenerate piece (measure zero): contributes nothing.
                    Err(_) => continue,
                };
                let samples = generator.sample_many(n, rng);
                if samples.len() < output_arity + 1 {
                    continue;
                }
                let points: Vec<Vector> =
                    samples.iter().map(|p| Vector::from(p.as_slice())).collect();
                if let Some(hull) = hull_to_hpolytope(&points) {
                    result_tuples.push(polytope_to_tuple(&hull));
                }
            }
        }
        Ok(GeneralizedRelation::from_tuples(
            output_arity,
            result_tuples,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_geometry::volume::{symmetric_difference_volume, union_volume};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fast() -> GeneratorParams {
        GeneratorParams {
            gamma: 0.1,
            ..GeneratorParams::fast()
        }
    }

    #[test]
    fn projection_query_matches_fourier_motzkin() {
        // Project the triangle 0 <= y <= x <= 1 (in R^2) onto x: the interval [0, 1].
        let tri = GeneralizedTuple::new(
            2,
            vec![
                Atom::le_from_ints(&[-1, 0], 0),
                Atom::le_from_ints(&[1, 0], -1),
                Atom::le_from_ints(&[0, -1], 0),
                Atom::le_from_ints(&[-1, 1], 0),
            ],
        );
        let est = ProjectionQueryEstimator::new(fast(), 0.2, 0.2);
        let mut rng = StdRng::seed_from_u64(101);
        let hull = est.estimate(&tri, &[0], Some(250), &mut rng).unwrap();
        // Symbolic baseline.
        let symbolic = GeneralizedRelation::from_tuple(tri).project(&[0]);
        let sd = symmetric_difference_volume(&symbolic.to_polytopes(), &[hull.clone()]);
        assert!(sd < 0.2, "symmetric difference {sd}");
        assert!(hull.contains_slice(&[0.5], 1e-6));
    }

    #[test]
    fn projection_query_relation_roundtrip() {
        let square = GeneralizedTuple::from_box_f64(&[0.0, 2.0], &[1.0, 3.0]);
        let est = ProjectionQueryEstimator::new(fast(), 0.2, 0.2);
        let mut rng = StdRng::seed_from_u64(102);
        let rel = est
            .estimate_relation(&square, &[1], Some(200), &mut rng)
            .unwrap();
        assert_eq!(rel.arity(), 1);
        assert!(rel.contains_f64(&[2.5]));
        assert!(!rel.contains_f64(&[3.5]));
    }

    #[test]
    fn positive_query_join_reconstruction() {
        // Q(x, y) = exists z. R(x, z) and S(z, y), the Section 4.3.2 shape.
        let mut db = Database::new();
        db.insert(
            "R",
            GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[2.0, 1.0]),
        );
        db.insert(
            "S",
            GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[1.0, 2.0]),
        );
        let q = Formula::exists(
            vec![2],
            Formula::and(vec![
                Formula::rel("R", vec![0, 2]),
                Formula::rel("S", vec![2, 1]),
            ]),
        );
        let est = PositiveQueryEstimator::new(fast(), 0.25, 0.25);
        let mut rng = StdRng::seed_from_u64(103);
        let approx = est.estimate(&db, &q, 2, &mut rng).unwrap();
        let exact = db.evaluate(&q, 2).unwrap();
        // Both cover roughly the same region: [0,2] x [0,2].
        let sd = symmetric_difference_volume(&exact.to_polytopes(), &approx.to_polytopes());
        let truth = union_volume(&exact.to_polytopes());
        assert!(truth > 0.0);
        assert!(
            sd / truth < 0.35,
            "relative symmetric difference {}",
            sd / truth
        );
    }

    #[test]
    fn union_of_blocks_is_reconstructed() {
        // Q(x, y) = R(x, y) or S(x, y) with disjoint R and S — no quantifier,
        // so the reconstruction is exact.
        let mut db = Database::new();
        db.insert(
            "R",
            GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[1.0, 1.0]),
        );
        db.insert(
            "S",
            GeneralizedRelation::from_box_f64(&[3.0, 0.0], &[4.0, 1.0]),
        );
        let q = Formula::or(vec![
            Formula::rel("R", vec![0, 1]),
            Formula::rel("S", vec![0, 1]),
        ]);
        let est = PositiveQueryEstimator::new(fast(), 0.2, 0.2);
        let mut rng = StdRng::seed_from_u64(104);
        let approx = est.estimate(&db, &q, 2, &mut rng).unwrap();
        assert!(approx.contains_f64(&[0.5, 0.5]));
        assert!(approx.contains_f64(&[3.5, 0.5]));
        assert!(!approx.contains_f64(&[2.0, 0.5]));
    }

    #[test]
    fn negative_queries_are_rejected() {
        let mut db = Database::new();
        db.insert("R", GeneralizedRelation::from_box_f64(&[0.0], &[1.0]));
        let q = Formula::not(Formula::rel("R", vec![0]));
        let est = PositiveQueryEstimator::new(fast(), 0.2, 0.2);
        let mut rng = StdRng::seed_from_u64(105);
        assert!(matches!(
            est.estimate(&db, &q, 1, &mut rng),
            Err(ReconstructionError::UnsupportedQuery(_))
        ));
    }

    #[test]
    fn unknown_relations_are_reported() {
        let db = Database::new();
        let q = Formula::rel("Missing", vec![0]);
        let est = PositiveQueryEstimator::new(fast(), 0.2, 0.2);
        let mut rng = StdRng::seed_from_u64(106);
        assert!(matches!(
            est.estimate(&db, &q, 1, &mut rng),
            Err(ReconstructionError::Constraint(_))
        ));
    }
}
