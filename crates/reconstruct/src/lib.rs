//! Reconstruction of query results from almost-uniform samples
//! (Section 4.3 of the paper).
//!
//! The symbolic evaluation of an FO+LIN query goes through quantifier
//! elimination, which is doubly exponential in the number of eliminated
//! variables. The paper's alternative: sample the result set almost uniformly
//! (possible for every positive existential query built from observable
//! relations), take convex hulls of the samples, and return the union of the
//! hulls as an `(ε, δ)`-estimation of the result *set* — not just its volume.
//!
//! * [`hull_sample_size`] — the sample size of Lemma 4.1 (Affentranger–
//!   Wieacker bound);
//! * [`ConvexReconstructor`] — hull-of-samples estimator for one convex set;
//! * [`ProjectionQueryEstimator`] — Algorithm 3 (Proposition 4.3): projection
//!   queries over a convex relation;
//! * [`PositiveQueryEstimator`] — Algorithms 4 and 5 (Theorem 4.4): arbitrary
//!   positive existential queries over a database of observable relations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod convex;
mod query;

pub use convex::{
    default_hull_sample_size, hull_sample_size, ConvexReconstructor, ReconstructionError,
    DEFAULT_SAMPLE_CAP,
};
pub use query::{PositiveQueryEstimator, ProjectionQueryEstimator};
