//! Families of convex bodies with known volumes.

use rand::Rng;

use cdb_constraint::{Atom, CompOp, GeneralizedRelation, GeneralizedTuple, LinTerm};
use cdb_num::Rational;

/// The hypercube `[-h, h]^d` as a generalized tuple. Exact volume `(2h)^d`.
pub fn hypercube(dim: usize, half_width: f64) -> GeneralizedTuple {
    GeneralizedTuple::from_box_f64(&vec![-half_width; dim], &vec![half_width; dim])
}

/// Exact volume of [`hypercube`].
pub fn hypercube_volume(dim: usize, half_width: f64) -> f64 {
    (2.0 * half_width).powi(dim as i32)
}

/// The standard simplex `{x ≥ 0, Σ x_i ≤ 1}`. Exact volume `1/d!`.
pub fn standard_simplex(dim: usize) -> GeneralizedTuple {
    let mut atoms: Vec<Atom> = (0..dim)
        .map(|i| {
            let mut coeffs = vec![0i64; dim];
            coeffs[i] = -1;
            Atom::le_from_ints(&coeffs, 0)
        })
        .collect();
    atoms.push(Atom::le_from_ints(&vec![1i64; dim], -1));
    GeneralizedTuple::new(dim, atoms)
}

/// Exact volume of [`standard_simplex`].
pub fn simplex_volume(dim: usize) -> f64 {
    1.0 / (1..=dim).map(|k| k as f64).product::<f64>()
}

/// The cross-polytope `{Σ |x_i| ≤ 1}` (2^d facets). Exact volume `2^d / d!`.
pub fn cross_polytope(dim: usize) -> GeneralizedTuple {
    let mut atoms = Vec::with_capacity(1 << dim);
    for mask in 0..(1u32 << dim) {
        let coeffs: Vec<i64> = (0..dim)
            .map(|i| if mask >> i & 1 == 1 { -1 } else { 1 })
            .collect();
        atoms.push(Atom::le_from_ints(&coeffs, -1));
    }
    GeneralizedTuple::new(dim, atoms)
}

/// Exact volume of [`cross_polytope`].
pub fn cross_polytope_volume(dim: usize) -> f64 {
    2f64.powi(dim as i32) / (1..=dim).map(|k| k as f64).product::<f64>()
}

/// An axis-aligned box with random side lengths in `[0.5, length_scale]`,
/// centered at the origin. Returns the tuple and its exact volume.
pub fn random_box<R: Rng + ?Sized>(
    dim: usize,
    length_scale: f64,
    rng: &mut R,
) -> (GeneralizedTuple, f64) {
    let mut lo = Vec::with_capacity(dim);
    let mut hi = Vec::with_capacity(dim);
    let mut volume = 1.0;
    for _ in 0..dim {
        let half = rng.gen_range(0.25..length_scale.max(0.5) / 2.0);
        lo.push(-half);
        hi.push(half);
        volume *= 2.0 * half;
    }
    (GeneralizedTuple::from_box_f64(&lo, &hi), volume)
}

/// A random well-bounded H-polytope: the hypercube `[-1,1]^d` cut by
/// `extra_cuts` random halfspaces through points near the boundary (so the
/// body always contains a ball of radius 1/2 around the origin).
pub fn random_hpolytope<R: Rng + ?Sized>(
    dim: usize,
    extra_cuts: usize,
    rng: &mut R,
) -> GeneralizedTuple {
    let mut tuple = hypercube(dim, 1.0);
    for _ in 0..extra_cuts {
        // Random unit-ish normal with small integer coordinates.
        let coeffs: Vec<i64> = (0..dim).map(|_| rng.gen_range(-3i64..=3)).collect();
        if coeffs.iter().all(|&c| c == 0) {
            continue;
        }
        let norm: f64 = coeffs.iter().map(|&c| (c * c) as f64).sum::<f64>().sqrt();
        // Offset between 0.6·‖a‖ and 1.5·‖a‖ keeps the inner ball of radius 0.5.
        let offset = rng.gen_range(0.6..1.5) * norm;
        let term = LinTerm::new(
            coeffs.iter().map(|&c| Rational::from_int(c)).collect(),
            -Rational::from_f64(offset).expect("finite offset"),
        );
        tuple.push(Atom::new(term, CompOp::Le));
    }
    tuple
}

/// The relation `{x : ‖x‖_∞ ≤ 1}` minus nothing, wrapped as a relation — a
/// convenience used by several experiments.
pub fn hypercube_relation(dim: usize, half_width: f64) -> GeneralizedRelation {
    GeneralizedRelation::from_tuple(hypercube(dim, half_width))
}

/// The closed-form ground-truth suite driven by the statistical acceptance
/// tests and experiment E1: every convex family of this module with a known
/// exact volume in dimension `dim`, as `(name, relation, exact_volume)`.
pub fn closed_form_suite(dim: usize) -> Vec<(&'static str, GeneralizedRelation, f64)> {
    vec![
        (
            "hypercube",
            GeneralizedRelation::from_tuple(hypercube(dim, 1.0)),
            hypercube_volume(dim, 1.0),
        ),
        (
            "simplex",
            GeneralizedRelation::from_tuple(standard_simplex(dim)),
            simplex_volume(dim),
        ),
        (
            "cross_polytope",
            GeneralizedRelation::from_tuple(cross_polytope(dim)),
            cross_polytope_volume(dim),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_geometry::volume::polytope_volume;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn closed_form_volumes_match_geometry() {
        for d in 2..=4usize {
            let cube = hypercube(d, 0.75);
            assert!(
                (polytope_volume(&cube.to_hpolytope()) - hypercube_volume(d, 0.75)).abs() < 1e-6,
                "cube d={d}"
            );
            let simplex = standard_simplex(d);
            assert!(
                (polytope_volume(&simplex.to_hpolytope()) - simplex_volume(d)).abs() < 1e-6,
                "simplex d={d}"
            );
            let cross = cross_polytope(d);
            assert!(
                (polytope_volume(&cross.to_hpolytope()) - cross_polytope_volume(d)).abs() < 1e-5,
                "cross d={d}"
            );
        }
    }

    #[test]
    fn random_box_volume_is_exact() {
        let mut rng = StdRng::seed_from_u64(7);
        for d in 2..=4usize {
            let (tuple, vol) = random_box(d, 3.0, &mut rng);
            assert!((polytope_volume(&tuple.to_hpolytope()) - vol).abs() < 1e-6);
        }
    }

    #[test]
    fn random_hpolytope_is_well_bounded() {
        let mut rng = StdRng::seed_from_u64(8);
        for d in 2..=4usize {
            let t = random_hpolytope(d, 2 * d, &mut rng);
            assert!(t.is_well_bounded(), "d = {d}");
            // It always contains a ball of radius 1/2 around the origin.
            assert!(t.satisfied_f64(&vec![0.0; d], 1e-9));
            let wb = t.to_hpolytope().well_bounded().unwrap();
            assert!(wb.r_inf > 0.3, "inner radius {}", wb.r_inf);
        }
    }

    #[test]
    fn relation_wrapper() {
        let r = hypercube_relation(3, 1.0);
        assert_eq!(r.arity(), 3);
        assert!(r.contains_f64(&[0.5, -0.5, 0.0]));
        assert!(!r.contains_f64(&[1.5, 0.0, 0.0]));
    }
}
