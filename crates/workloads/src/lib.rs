//! Synthetic workload generators for the experiments.
//!
//! The paper's evaluation is analytic; the experiments in EXPERIMENTS.md need
//! concrete families of generalized relations with known ground truth. This
//! crate provides them:
//!
//! * [`polytopes`] — classic convex bodies (hypercubes, simplices,
//!   cross-polytopes, random rotated boxes, random H-polytopes) with exact
//!   volumes where closed forms exist;
//! * [`gis`] — a synthetic Geographical Information System layer generator
//!   (unions of convex regions with controlled overlap), standing in for the
//!   GIS applications that motivate the paper, including time-sliced
//!   moving-object overlays ([`gis::moving_overlay`]);
//! * [`sat`] — the Section 4.1.3 encoding of CNF formulas as intersections of
//!   observable unions (literal `x` ↦ `3/4 < x < 1`, literal `¬x` ↦
//!   `0 < x < 1/4`), used to demonstrate why the poly-related restriction is
//!   necessary;
//! * [`structured`] — sparse-structured H-polytope scenarios (axis-aligned
//!   box stacks, banded overlay intersections, SAT-style sparse cut systems)
//!   that exercise the structure-aware constraint-matrix kernels; used by
//!   the walk perf report and the kernel-equivalence property tests;
//! * [`projection`] — projection scenarios with controlled fiber dimension
//!   and closed-form fiber/projection volumes (the deep cone, skewed
//!   prisms), validating the `Exact` vs `Estimated` compensation-weight
//!   strategies of the projection generator;
//! * [`pathological`] — adversarial zero-acceptance compositions (sliver
//!   intersections, vanishing differences, needle-in-haystack rejection)
//!   that drive the resilience suite's budget and fault-injection tests;
//! * [`degenerate`] — high-aspect bodies (needle boxes, squeezed simplices)
//!   with closed-form volumes, stressing the rounding path;
//! * [`sessions`] — polytope soups whose named relations share structurally
//!   identical bodies (stressing the prepared-relation store under
//!   contention) plus the [`sessions::SessionMix`] read/volume/reconstruction
//!   blends consumed by the `cdb-bench` load harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod degenerate;
pub mod gis;
pub mod pathological;
pub mod polytopes;
pub mod projection;
pub mod sat;
pub mod sessions;
pub mod structured;
