//! A synthetic GIS layer generator.
//!
//! The paper motivates constraint databases with Geographical Information
//! Systems, where layers are unions of convex regions (administrative zones,
//! land parcels, road segments as thin boxes) and typical analyses are
//! statistical (areas, overlays). No public data set is fixed by the paper,
//! so the experiments use this generator: it produces well-bounded unions of
//! convex regions in the plane with a controlled amount of overlap, together
//! with their exact areas.

use rand::Rng;

use cdb_constraint::{GeneralizedRelation, GeneralizedTuple};
use cdb_geometry::volume::union_volume;

/// Parameters of a synthetic GIS layer.
#[derive(Clone, Debug)]
pub struct GisLayerSpec {
    /// Number of convex regions in the layer.
    pub regions: usize,
    /// Side of the square map `[0, map_size]²`.
    pub map_size: f64,
    /// Regions are boxes with sides drawn from `[min_side, max_side]`.
    pub min_side: f64,
    /// Upper bound on the region side length.
    pub max_side: f64,
}

impl Default for GisLayerSpec {
    fn default() -> Self {
        GisLayerSpec {
            regions: 6,
            map_size: 10.0,
            min_side: 1.0,
            max_side: 3.0,
        }
    }
}

/// A generated GIS layer: the relation, its pieces and its exact area.
#[derive(Clone, Debug)]
pub struct GisLayer {
    /// The layer as a generalized relation (union of convex regions).
    pub relation: GeneralizedRelation,
    /// Exact area of the union (inclusion–exclusion over the pieces).
    pub exact_area: f64,
}

/// Generates a layer of axis-aligned rectangular parcels.
pub fn parcels<R: Rng + ?Sized>(spec: &GisLayerSpec, rng: &mut R) -> GisLayer {
    assert!(
        spec.regions >= 1 && spec.regions <= 16,
        "inclusion-exclusion needs few regions"
    );
    let mut tuples = Vec::with_capacity(spec.regions);
    for _ in 0..spec.regions {
        let w = rng.gen_range(spec.min_side..spec.max_side);
        let h = rng.gen_range(spec.min_side..spec.max_side);
        let x = rng.gen_range(0.0..(spec.map_size - w).max(1e-9));
        let y = rng.gen_range(0.0..(spec.map_size - h).max(1e-9));
        tuples.push(GeneralizedTuple::from_box_f64(&[x, y], &[x + w, y + h]));
    }
    let relation = GeneralizedRelation::from_tuples(2, tuples);
    let exact_area = union_volume(&relation.to_polytopes());
    GisLayer {
        relation,
        exact_area,
    }
}

/// Generates a "road network" layer: `count` thin boxes (width `width`)
/// alternating horizontal/vertical across the map.
pub fn roads<R: Rng + ?Sized>(count: usize, map_size: f64, width: f64, rng: &mut R) -> GisLayer {
    assert!(count >= 1 && count <= 12);
    let mut tuples = Vec::with_capacity(count);
    for i in 0..count {
        let offset = rng.gen_range(0.0..map_size - width);
        let tuple = if i % 2 == 0 {
            GeneralizedTuple::from_box_f64(&[0.0, offset], &[map_size, offset + width])
        } else {
            GeneralizedTuple::from_box_f64(&[offset, 0.0], &[offset + width, map_size])
        };
        tuples.push(tuple);
    }
    let relation = GeneralizedRelation::from_tuples(2, tuples);
    let exact_area = union_volume(&relation.to_polytopes());
    GisLayer {
        relation,
        exact_area,
    }
}

/// A deterministic two-layer overlay scenario used by the examples: a parcels
/// layer and a roads layer on the same map, with their exact intersection
/// area.
#[derive(Clone, Debug)]
pub struct OverlayScenario {
    /// The parcels layer.
    pub parcels: GisLayer,
    /// The roads layer.
    pub roads: GisLayer,
    /// Exact area of the overlay (intersection of the two layers).
    pub exact_overlay_area: f64,
}

/// Builds an overlay scenario from a seed-controlled RNG.
pub fn overlay_scenario<R: Rng + ?Sized>(rng: &mut R) -> OverlayScenario {
    let parcels_layer = parcels(&GisLayerSpec::default(), rng);
    let roads_layer = roads(4, 10.0, 0.8, rng);
    let exact_overlay_area = cdb_geometry::volume::union_intersection_volume(
        &parcels_layer.relation.to_polytopes(),
        &roads_layer.relation.to_polytopes(),
    );
    OverlayScenario {
        parcels: parcels_layer,
        roads: roads_layer,
        exact_overlay_area,
    }
}

/// Parameters of a time-sliced moving-object overlay.
#[derive(Clone, Debug)]
pub struct MovingOverlaySpec {
    /// Number of moving objects (unit squares, one per lane). Capped at 16
    /// by the inclusion–exclusion exact-area computation.
    pub objects: usize,
    /// Number of time slices to materialize.
    pub slices: usize,
    /// Width of the map; object x-origins bounce inside `[0, width - 1]`.
    pub width: f64,
    /// Width of the static north–south corridor the slices are overlaid on.
    pub corridor_width: f64,
    /// Time step between consecutive slices.
    pub dt: f64,
}

impl Default for MovingOverlaySpec {
    fn default() -> Self {
        MovingOverlaySpec {
            objects: 5,
            slices: 6,
            width: 8.0,
            corridor_width: 1.0,
            dt: 0.6,
        }
    }
}

/// A time-sliced moving-object overlay scenario.
///
/// Each object is a unit square confined to its own horizontal lane
/// (lane `i` is `y ∈ [2i + 0.5, 2i + 1.5]`), so every slice is a union of
/// *disjoint* unit squares with exact area `objects` — uniformity gates can
/// fold a sample to its offset inside the owning object. Objects move with
/// constant per-object velocity, bouncing elastically off the map edges; the
/// overlay against the static corridor has a closed-form area per slice.
#[derive(Clone, Debug)]
pub struct MovingOverlay {
    /// One layer per time slice (`slices[j]` is time `j·dt`).
    pub slices: Vec<GisLayer>,
    /// The static corridor layer (a vertical strip spanning all lanes).
    pub corridor: GisLayer,
    /// Exact area of `slices[j] ∩ corridor` for each slice.
    pub overlay_areas: Vec<f64>,
    /// Per-slice object x-origins: `object_x[j][i]` is the left edge of
    /// object `i` at slice `j` (its lane fixes the y-extent).
    pub object_x: Vec<Vec<f64>>,
    /// Low edge of each object's lane (`lane_y[i]` to `lane_y[i] + 1`).
    pub lane_y: Vec<f64>,
}

/// Position of a bouncing point starting at `x0` with velocity `v` after
/// time `t`, confined to `[0, span]` (triangle-wave fold of the free path).
fn bounce(x0: f64, v: f64, t: f64, span: f64) -> f64 {
    let period = 2.0 * span;
    let m = (x0 + v * t).rem_euclid(period);
    if m <= span {
        m
    } else {
        period - m
    }
}

/// Builds a moving-object overlay scenario from a seed-controlled RNG:
/// random initial positions and velocities, then deterministic closed-form
/// motion across `spec.slices` time slices.
pub fn moving_overlay<R: Rng + ?Sized>(spec: &MovingOverlaySpec, rng: &mut R) -> MovingOverlay {
    assert!(
        spec.objects >= 1 && spec.objects <= 16,
        "inclusion-exclusion needs few regions"
    );
    assert!(spec.slices >= 1 && spec.width > 2.0 && spec.corridor_width > 0.0);
    let span = spec.width - 1.0;
    let height = 2.0 * spec.objects as f64 + 1.0;
    let lane_y: Vec<f64> = (0..spec.objects).map(|i| 2.0 * i as f64 + 0.5).collect();
    let x0: Vec<f64> = (0..spec.objects)
        .map(|_| rng.gen_range(0.0..span))
        .collect();
    let velocity: Vec<f64> = (0..spec.objects)
        .map(|_| {
            let speed: f64 = rng.gen_range(0.5..2.5);
            if rng.gen_bool(0.5) {
                speed
            } else {
                -speed
            }
        })
        .collect();

    let corridor_lo = (spec.width - spec.corridor_width) / 2.0;
    let corridor_hi = corridor_lo + spec.corridor_width;
    let corridor_relation = GeneralizedRelation::from_tuple(GeneralizedTuple::from_box_f64(
        &[corridor_lo, 0.0],
        &[corridor_hi, height],
    ));
    let corridor = GisLayer {
        exact_area: spec.corridor_width * height,
        relation: corridor_relation,
    };

    let mut slices = Vec::with_capacity(spec.slices);
    let mut overlay_areas = Vec::with_capacity(spec.slices);
    let mut object_x = Vec::with_capacity(spec.slices);
    for j in 0..spec.slices {
        let t = j as f64 * spec.dt;
        let xs: Vec<f64> = (0..spec.objects)
            .map(|i| bounce(x0[i], velocity[i], t, span))
            .collect();
        let tuples: Vec<GeneralizedTuple> = xs
            .iter()
            .zip(&lane_y)
            .map(|(&x, &y)| GeneralizedTuple::from_box_f64(&[x, y], &[x + 1.0, y + 1.0]))
            .collect();
        let relation = GeneralizedRelation::from_tuples(2, tuples);
        let exact_area = union_volume(&relation.to_polytopes());
        let overlay: f64 = xs
            .iter()
            .map(|&x| (corridor_hi.min(x + 1.0) - corridor_lo.max(x)).max(0.0))
            .sum();
        slices.push(GisLayer {
            relation,
            exact_area,
        });
        overlay_areas.push(overlay);
        object_x.push(xs);
    }
    MovingOverlay {
        slices,
        corridor,
        overlay_areas,
        object_x,
        lane_y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parcels_are_inside_the_map_and_have_positive_area() {
        let mut rng = StdRng::seed_from_u64(11);
        let layer = parcels(&GisLayerSpec::default(), &mut rng);
        assert_eq!(layer.relation.arity(), 2);
        assert!(layer.exact_area > 0.0);
        assert!(layer.exact_area <= 10.0 * 10.0);
        // Union area never exceeds the sum of the piece areas.
        let sum: f64 = layer
            .relation
            .to_polytopes()
            .iter()
            .map(cdb_geometry::volume::polytope_volume)
            .sum();
        assert!(layer.exact_area <= sum + 1e-9);
    }

    #[test]
    fn roads_have_the_expected_area_range() {
        let mut rng = StdRng::seed_from_u64(12);
        let layer = roads(4, 10.0, 0.5, &mut rng);
        // Each road has area 5; overlaps only reduce the union.
        assert!(layer.exact_area <= 20.0 + 1e-9);
        assert!(layer.exact_area >= 5.0);
    }

    #[test]
    fn overlay_scenario_is_consistent() {
        let mut rng = StdRng::seed_from_u64(13);
        let sc = overlay_scenario(&mut rng);
        assert!(sc.exact_overlay_area <= sc.parcels.exact_area + 1e-9);
        assert!(sc.exact_overlay_area <= sc.roads.exact_area + 1e-9);
        assert!(sc.exact_overlay_area >= 0.0);
        // The scenario is reproducible for a fixed seed.
        let mut rng2 = StdRng::seed_from_u64(13);
        let sc2 = overlay_scenario(&mut rng2);
        assert!((sc.exact_overlay_area - sc2.exact_overlay_area).abs() < 1e-12);
    }

    #[test]
    fn moving_overlay_slices_are_disjoint_unit_squares() {
        let mut rng = StdRng::seed_from_u64(15);
        let spec = MovingOverlaySpec::default();
        let mo = moving_overlay(&spec, &mut rng);
        assert_eq!(mo.slices.len(), spec.slices);
        for (j, slice) in mo.slices.iter().enumerate() {
            // Lanes keep the objects disjoint, so the union area is exactly
            // the object count.
            assert!(
                (slice.exact_area - spec.objects as f64).abs() < 1e-9,
                "slice {j}: area {}",
                slice.exact_area
            );
            for &x in &mo.object_x[j] {
                assert!((0.0..=spec.width - 1.0).contains(&x), "slice {j}: x={x}");
            }
        }
    }

    #[test]
    fn moving_overlay_areas_match_the_polytope_integrator() {
        let mut rng = StdRng::seed_from_u64(16);
        let mo = moving_overlay(&MovingOverlaySpec::default(), &mut rng);
        for (j, slice) in mo.slices.iter().enumerate() {
            let exact = cdb_geometry::volume::union_intersection_volume(
                &slice.relation.to_polytopes(),
                &mo.corridor.relation.to_polytopes(),
            );
            assert!(
                (exact - mo.overlay_areas[j]).abs() < 1e-9,
                "slice {j}: integrator {exact} vs closed form {}",
                mo.overlay_areas[j]
            );
        }
    }

    #[test]
    fn moving_overlay_is_reproducible_and_actually_moves() {
        let mo1 = moving_overlay(
            &MovingOverlaySpec::default(),
            &mut StdRng::seed_from_u64(17),
        );
        let mo2 = moving_overlay(
            &MovingOverlaySpec::default(),
            &mut StdRng::seed_from_u64(17),
        );
        assert_eq!(mo1.object_x, mo2.object_x);
        // Objects are in motion: at least one position differs across slices.
        assert_ne!(mo1.object_x[0], mo1.object_x[1]);
    }

    #[test]
    #[should_panic(expected = "inclusion-exclusion")]
    fn too_many_regions_rejected() {
        let mut rng = StdRng::seed_from_u64(14);
        let _ = parcels(
            &GisLayerSpec {
                regions: 50,
                ..Default::default()
            },
            &mut rng,
        );
    }
}
