//! A synthetic GIS layer generator.
//!
//! The paper motivates constraint databases with Geographical Information
//! Systems, where layers are unions of convex regions (administrative zones,
//! land parcels, road segments as thin boxes) and typical analyses are
//! statistical (areas, overlays). No public data set is fixed by the paper,
//! so the experiments use this generator: it produces well-bounded unions of
//! convex regions in the plane with a controlled amount of overlap, together
//! with their exact areas.

use rand::Rng;

use cdb_constraint::{GeneralizedRelation, GeneralizedTuple};
use cdb_geometry::volume::union_volume;

/// Parameters of a synthetic GIS layer.
#[derive(Clone, Debug)]
pub struct GisLayerSpec {
    /// Number of convex regions in the layer.
    pub regions: usize,
    /// Side of the square map `[0, map_size]²`.
    pub map_size: f64,
    /// Regions are boxes with sides drawn from `[min_side, max_side]`.
    pub min_side: f64,
    /// Upper bound on the region side length.
    pub max_side: f64,
}

impl Default for GisLayerSpec {
    fn default() -> Self {
        GisLayerSpec {
            regions: 6,
            map_size: 10.0,
            min_side: 1.0,
            max_side: 3.0,
        }
    }
}

/// A generated GIS layer: the relation, its pieces and its exact area.
#[derive(Clone, Debug)]
pub struct GisLayer {
    /// The layer as a generalized relation (union of convex regions).
    pub relation: GeneralizedRelation,
    /// Exact area of the union (inclusion–exclusion over the pieces).
    pub exact_area: f64,
}

/// Generates a layer of axis-aligned rectangular parcels.
pub fn parcels<R: Rng + ?Sized>(spec: &GisLayerSpec, rng: &mut R) -> GisLayer {
    assert!(
        spec.regions >= 1 && spec.regions <= 16,
        "inclusion-exclusion needs few regions"
    );
    let mut tuples = Vec::with_capacity(spec.regions);
    for _ in 0..spec.regions {
        let w = rng.gen_range(spec.min_side..spec.max_side);
        let h = rng.gen_range(spec.min_side..spec.max_side);
        let x = rng.gen_range(0.0..(spec.map_size - w).max(1e-9));
        let y = rng.gen_range(0.0..(spec.map_size - h).max(1e-9));
        tuples.push(GeneralizedTuple::from_box_f64(&[x, y], &[x + w, y + h]));
    }
    let relation = GeneralizedRelation::from_tuples(2, tuples);
    let exact_area = union_volume(&relation.to_polytopes());
    GisLayer {
        relation,
        exact_area,
    }
}

/// Generates a "road network" layer: `count` thin boxes (width `width`)
/// alternating horizontal/vertical across the map.
pub fn roads<R: Rng + ?Sized>(count: usize, map_size: f64, width: f64, rng: &mut R) -> GisLayer {
    assert!(count >= 1 && count <= 12);
    let mut tuples = Vec::with_capacity(count);
    for i in 0..count {
        let offset = rng.gen_range(0.0..map_size - width);
        let tuple = if i % 2 == 0 {
            GeneralizedTuple::from_box_f64(&[0.0, offset], &[map_size, offset + width])
        } else {
            GeneralizedTuple::from_box_f64(&[offset, 0.0], &[offset + width, map_size])
        };
        tuples.push(tuple);
    }
    let relation = GeneralizedRelation::from_tuples(2, tuples);
    let exact_area = union_volume(&relation.to_polytopes());
    GisLayer {
        relation,
        exact_area,
    }
}

/// A deterministic two-layer overlay scenario used by the examples: a parcels
/// layer and a roads layer on the same map, with their exact intersection
/// area.
#[derive(Clone, Debug)]
pub struct OverlayScenario {
    /// The parcels layer.
    pub parcels: GisLayer,
    /// The roads layer.
    pub roads: GisLayer,
    /// Exact area of the overlay (intersection of the two layers).
    pub exact_overlay_area: f64,
}

/// Builds an overlay scenario from a seed-controlled RNG.
pub fn overlay_scenario<R: Rng + ?Sized>(rng: &mut R) -> OverlayScenario {
    let parcels_layer = parcels(&GisLayerSpec::default(), rng);
    let roads_layer = roads(4, 10.0, 0.8, rng);
    let exact_overlay_area = cdb_geometry::volume::union_intersection_volume(
        &parcels_layer.relation.to_polytopes(),
        &roads_layer.relation.to_polytopes(),
    );
    OverlayScenario {
        parcels: parcels_layer,
        roads: roads_layer,
        exact_overlay_area,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parcels_are_inside_the_map_and_have_positive_area() {
        let mut rng = StdRng::seed_from_u64(11);
        let layer = parcels(&GisLayerSpec::default(), &mut rng);
        assert_eq!(layer.relation.arity(), 2);
        assert!(layer.exact_area > 0.0);
        assert!(layer.exact_area <= 10.0 * 10.0);
        // Union area never exceeds the sum of the piece areas.
        let sum: f64 = layer
            .relation
            .to_polytopes()
            .iter()
            .map(cdb_geometry::volume::polytope_volume)
            .sum();
        assert!(layer.exact_area <= sum + 1e-9);
    }

    #[test]
    fn roads_have_the_expected_area_range() {
        let mut rng = StdRng::seed_from_u64(12);
        let layer = roads(4, 10.0, 0.5, &mut rng);
        // Each road has area 5; overlaps only reduce the union.
        assert!(layer.exact_area <= 20.0 + 1e-9);
        assert!(layer.exact_area >= 5.0);
    }

    #[test]
    fn overlay_scenario_is_consistent() {
        let mut rng = StdRng::seed_from_u64(13);
        let sc = overlay_scenario(&mut rng);
        assert!(sc.exact_overlay_area <= sc.parcels.exact_area + 1e-9);
        assert!(sc.exact_overlay_area <= sc.roads.exact_area + 1e-9);
        assert!(sc.exact_overlay_area >= 0.0);
        // The scenario is reproducible for a fixed seed.
        let mut rng2 = StdRng::seed_from_u64(13);
        let sc2 = overlay_scenario(&mut rng2);
        assert!((sc.exact_overlay_area - sc2.exact_overlay_area).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "inclusion-exclusion")]
    fn too_many_regions_rejected() {
        let mut rng = StdRng::seed_from_u64(14);
        let _ = parcels(
            &GisLayerSpec {
                regions: 50,
                ..Default::default()
            },
            &mut rng,
        );
    }
}
