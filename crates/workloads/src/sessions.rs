//! Polytope soups with shared sub-relations and mixed query sessions.
//!
//! A production constraint database does not answer one query at a time over
//! one relation: many clients hold sessions against overlapping catalogs, and
//! most of the catalog is *structurally shared* — different names bound to
//! the same constraint formula. This module generates that shape:
//!
//! * [`polytope_soup`] builds a catalog of named relations whose bodies are
//!   drawn from a much smaller content pool, so the prepared-relation store
//!   sees many names collapsing onto few canonical keys (maximum contention
//!   on shared `PreparedStore` entries);
//! * [`SessionMix`] describes the read/volume/reconstruction blend of a
//!   session, consumed by `cdb-bench`'s load harness to shape traffic.
//!
//! Every pool body is a union of two *disjoint* axis boxes, so exact volumes
//! come for free and load tests can sanity-check estimates mid-run.

use rand::Rng;

use cdb_constraint::{GeneralizedRelation, GeneralizedTuple};

/// Parameters of a polytope soup.
#[derive(Clone, Debug)]
pub struct SoupSpec {
    /// Number of named relations in the catalog.
    pub names: usize,
    /// Number of distinct bodies backing them (`names` map onto these
    /// round-robin, so `pool < names` forces canonical-key sharing).
    pub pool: usize,
    /// Side of the square map `[0, map_size]²` the bodies live in.
    pub map_size: f64,
}

impl Default for SoupSpec {
    fn default() -> Self {
        SoupSpec {
            names: 6,
            pool: 3,
            map_size: 10.0,
        }
    }
}

/// A generated soup: the named catalog plus per-name ground truth.
#[derive(Clone, Debug)]
pub struct Soup {
    /// `(name, relation)` catalog entries, names `"Q0"`, `"Q1"`, ….
    pub entries: Vec<(String, GeneralizedRelation)>,
    /// Exact volume of each entry (unions of disjoint boxes).
    pub exact_volumes: Vec<f64>,
    /// Which pool body each entry is backed by (`entries[i]` ↔ pool index
    /// `pool_index[i]`); entries with equal indices are structurally
    /// identical and share a canonical key in the prepared store.
    pub pool_index: Vec<usize>,
}

impl Soup {
    /// The catalog names, in entry order.
    pub fn names(&self) -> Vec<String> {
        self.entries.iter().map(|(n, _)| n.clone()).collect()
    }
}

/// Generates a polytope soup: a pool of `spec.pool` two-box bodies and
/// `spec.names` named relations mapping round-robin onto the pool.
///
/// Each pool body is the union of one box in the left half of the map and
/// one in the right half, so the pieces are disjoint and the exact volume is
/// the sum of the two box areas.
pub fn polytope_soup<R: Rng + ?Sized>(spec: &SoupSpec, rng: &mut R) -> Soup {
    assert!(spec.pool >= 1 && spec.names >= spec.pool);
    let half = spec.map_size / 2.0;
    let mut pool = Vec::with_capacity(spec.pool);
    let mut pool_volumes = Vec::with_capacity(spec.pool);
    for _ in 0..spec.pool {
        let mut tuples = Vec::with_capacity(2);
        let mut volume = 0.0;
        for side in 0..2 {
            let x_lo = half * side as f64;
            let w = rng.gen_range(half * 0.2..half * 0.8);
            let h = rng.gen_range(spec.map_size * 0.2..spec.map_size * 0.8);
            let x = x_lo + rng.gen_range(0.0..(half - w).max(1e-9));
            let y = rng.gen_range(0.0..(spec.map_size - h).max(1e-9));
            tuples.push(GeneralizedTuple::from_box_f64(&[x, y], &[x + w, y + h]));
            volume += w * h;
        }
        pool.push(GeneralizedRelation::from_tuples(2, tuples));
        pool_volumes.push(volume);
    }
    let mut entries = Vec::with_capacity(spec.names);
    let mut exact_volumes = Vec::with_capacity(spec.names);
    let mut pool_index = Vec::with_capacity(spec.names);
    for i in 0..spec.names {
        let k = i % spec.pool;
        entries.push((format!("Q{i}"), pool[k].clone()));
        exact_volumes.push(pool_volumes[k]);
        pool_index.push(k);
    }
    Soup {
        entries,
        exact_volumes,
        pool_index,
    }
}

/// The read/volume/reconstruction blend of a query session, as relative
/// weights (they need not sum to 1; zero weight disables a class).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SessionMix {
    /// Weight of point-sampling (`approx_generate`) requests.
    pub sample: f64,
    /// Weight of volume-estimation (`approx_volume`) requests.
    pub volume: f64,
    /// Weight of reconstruction (`approx_query`) requests.
    pub reconstruction: f64,
}

impl SessionMix {
    /// The interactive-GIS default: mostly reads, some analytics, a few
    /// reconstructions.
    pub fn read_heavy() -> Self {
        SessionMix {
            sample: 0.65,
            volume: 0.25,
            reconstruction: 0.10,
        }
    }

    /// An analytics-dominated session: volume estimates outweigh reads.
    pub fn analytic() -> Self {
        SessionMix {
            sample: 0.30,
            volume: 0.60,
            reconstruction: 0.10,
        }
    }

    /// Sampling and volumes only — the blend for families whose relations
    /// are not reconstruction targets (e.g. high-dimensional degenerate
    /// bodies).
    pub fn no_reconstruction(sample: f64, volume: f64) -> Self {
        SessionMix {
            sample,
            volume,
            reconstruction: 0.0,
        }
    }

    /// Total weight; panics if no class has positive weight.
    pub fn total(&self) -> f64 {
        let t = self.sample + self.volume + self.reconstruction;
        assert!(
            t > 0.0 && self.sample >= 0.0 && self.volume >= 0.0 && self.reconstruction >= 0.0,
            "a session mix needs nonnegative weights and at least one positive class"
        );
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_geometry::volume::union_volume;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn soup_shares_pool_bodies_across_names() {
        let mut rng = StdRng::seed_from_u64(41);
        let soup = polytope_soup(&SoupSpec::default(), &mut rng);
        assert_eq!(soup.entries.len(), 6);
        // Q0 and Q3 are backed by pool body 0 and structurally identical.
        assert_eq!(soup.pool_index[0], soup.pool_index[3]);
        assert_eq!(soup.entries[0].1, soup.entries[3].1);
        // Distinct pool bodies are actually distinct.
        assert_ne!(soup.entries[0].1, soup.entries[1].1);
    }

    #[test]
    fn soup_exact_volumes_match_inclusion_exclusion() {
        let mut rng = StdRng::seed_from_u64(42);
        let soup = polytope_soup(&SoupSpec::default(), &mut rng);
        for (i, (_, relation)) in soup.entries.iter().enumerate() {
            let union = union_volume(&relation.to_polytopes());
            assert!(
                (union - soup.exact_volumes[i]).abs() < 1e-9,
                "entry {i}: union {union} vs recorded {}",
                soup.exact_volumes[i]
            );
        }
    }

    #[test]
    fn session_mix_totals_and_rejects_empty() {
        assert!((SessionMix::read_heavy().total() - 1.0).abs() < 1e-12);
        assert_eq!(SessionMix::no_reconstruction(0.7, 0.3).reconstruction, 0.0);
        let bad = SessionMix {
            sample: 0.0,
            volume: 0.0,
            reconstruction: 0.0,
        };
        assert!(std::panic::catch_unwind(move || bad.total()).is_err());
    }
}
