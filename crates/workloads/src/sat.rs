//! The SAT encoding of Section 4.1.3.
//!
//! With each literal `x` (respectively `¬x`) the paper associates the
//! constraint `3/4 < x < 1` (respectively `0 < x < 1/4`). A clause is the
//! union of its literal slabs — an observable relation — and a CNF formula is
//! the intersection of its clauses. A relative volume estimator for general
//! intersections would decide satisfiability, which is why the poly-related
//! restriction of Proposition 4.1 is necessary (unless P = NP).

use rand::Rng;

use cdb_constraint::{Atom, CompOp, GeneralizedRelation, GeneralizedTuple, LinTerm};
use cdb_num::Rational;

/// A literal: variable index and polarity (`true` = positive).
pub type Literal = (usize, bool);

/// A CNF formula: clauses of literals over `n_vars` variables.
#[derive(Clone, Debug)]
pub struct CnfFormula {
    /// Number of propositional variables.
    pub n_vars: usize,
    /// The clauses.
    pub clauses: Vec<Vec<Literal>>,
}

impl CnfFormula {
    /// Evaluates the formula under an assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.n_vars);
        self.clauses
            .iter()
            .all(|clause| clause.iter().any(|&(v, pol)| assignment[v] == pol))
    }

    /// Brute-force satisfiability (exponential; for small test instances).
    pub fn brute_force_satisfiable(&self) -> bool {
        assert!(self.n_vars <= 24, "brute force limited to 24 variables");
        (0u64..(1 << self.n_vars)).any(|mask| {
            let assignment: Vec<bool> = (0..self.n_vars).map(|i| mask >> i & 1 == 1).collect();
            self.eval(&assignment)
        })
    }
}

/// The geometric slab of one literal inside the cube `[0,1]^n`:
/// `3/4 < x_v < 1` for a positive literal, `0 < x_v < 1/4` for a negative one
/// (the remaining coordinates range over `[0,1]`).
pub fn literal_tuple(n_vars: usize, literal: Literal) -> GeneralizedTuple {
    let (v, polarity) = literal;
    assert!(v < n_vars);
    let mut tuple = GeneralizedTuple::from_box_f64(&vec![0.0; n_vars], &vec![1.0; n_vars]);
    let x = LinTerm::var(n_vars, v);
    if polarity {
        // x > 3/4.
        tuple.push(Atom::new(
            LinTerm::constant(n_vars, Rational::from_ratio(3, 4)).sub(&x),
            CompOp::Lt,
        ));
    } else {
        // x < 1/4.
        tuple.push(Atom::new(
            x.sub(&LinTerm::constant(n_vars, Rational::from_ratio(1, 4))),
            CompOp::Lt,
        ));
    }
    tuple
}

/// The geometric encoding of one clause: the union of its literal slabs.
pub fn clause_relation(n_vars: usize, clause: &[Literal]) -> GeneralizedRelation {
    GeneralizedRelation::from_tuples(
        n_vars,
        clause.iter().map(|&l| literal_tuple(n_vars, l)).collect(),
    )
}

/// The geometric encoding of a CNF formula: one observable relation per
/// clause; the formula is satisfiable iff the intersection of the clause
/// relations contains one of the `2^n` "corner" boxes, i.e. iff the
/// intersection has positive volume.
pub fn cnf_relations(cnf: &CnfFormula) -> Vec<GeneralizedRelation> {
    cnf.clauses
        .iter()
        .map(|c| clause_relation(cnf.n_vars, c))
        .collect()
}

/// Maps a boolean assignment to the center of its corner box
/// (`true ↦ 7/8`, `false ↦ 1/8`).
pub fn assignment_to_point(assignment: &[bool]) -> Vec<f64> {
    assignment
        .iter()
        .map(|&b| if b { 0.875 } else { 0.125 })
        .collect()
}

/// Generates a random k-CNF formula.
pub fn random_k_cnf<R: Rng + ?Sized>(
    n_vars: usize,
    n_clauses: usize,
    k: usize,
    rng: &mut R,
) -> CnfFormula {
    assert!(k >= 1 && k <= n_vars);
    let clauses = (0..n_clauses)
        .map(|_| {
            let mut vars: Vec<usize> = (0..n_vars).collect();
            // Partial Fisher–Yates to pick k distinct variables.
            for i in 0..k {
                let j = rng.gen_range(i..n_vars);
                vars.swap(i, j);
            }
            vars[..k].iter().map(|&v| (v, rng.gen_bool(0.5))).collect()
        })
        .collect();
    CnfFormula { n_vars, clauses }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn literal_slabs_encode_polarity() {
        let pos = literal_tuple(2, (0, true));
        assert!(pos.satisfied_f64(&[0.9, 0.5], 0.0));
        assert!(!pos.satisfied_f64(&[0.5, 0.5], 0.0));
        let neg = literal_tuple(2, (0, false));
        assert!(neg.satisfied_f64(&[0.1, 0.5], 0.0));
        assert!(!neg.satisfied_f64(&[0.5, 0.5], 0.0));
    }

    #[test]
    fn satisfying_assignments_map_into_the_intersection() {
        // (x0 or x1) and (not x0 or x1): satisfied by x1 = true.
        let cnf = CnfFormula {
            n_vars: 2,
            clauses: vec![vec![(0, true), (1, true)], vec![(0, false), (1, true)]],
        };
        assert!(cnf.brute_force_satisfiable());
        let relations = cnf_relations(&cnf);
        assert_eq!(relations.len(), 2);
        let satisfying = assignment_to_point(&[true, true]);
        assert!(relations.iter().all(|r| r.contains_f64(&satisfying)));
        let falsifying = assignment_to_point(&[true, false]);
        assert!(!relations.iter().all(|r| r.contains_f64(&falsifying)));
    }

    #[test]
    fn unsatisfiable_formula_has_empty_intersection_of_corners() {
        // x0 and not x0.
        let cnf = CnfFormula {
            n_vars: 1,
            clauses: vec![vec![(0, true)], vec![(0, false)]],
        };
        assert!(!cnf.brute_force_satisfiable());
        let relations = cnf_relations(&cnf);
        for corner in [[0.125], [0.875]] {
            assert!(!relations.iter().all(|r| r.contains_f64(&corner)));
        }
        // The intersection of the two slabs really is empty.
        let inter = relations[0].intersection(&relations[1]);
        assert!(inter.is_syntactically_empty() || inter.prune_degenerate().tuples().is_empty());
    }

    #[test]
    fn cnf_evaluation_and_geometry_agree_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(15);
        for _ in 0..5 {
            let cnf = random_k_cnf(4, 6, 3, &mut rng);
            let relations = cnf_relations(&cnf);
            for mask in 0u64..16 {
                let assignment: Vec<bool> = (0..4).map(|i| mask >> i & 1 == 1).collect();
                let point = assignment_to_point(&assignment);
                let geometric = relations.iter().all(|r| r.contains_f64(&point));
                assert_eq!(
                    geometric,
                    cnf.eval(&assignment),
                    "assignment {assignment:?}"
                );
            }
        }
    }

    #[test]
    fn random_cnf_has_requested_shape() {
        let mut rng = StdRng::seed_from_u64(16);
        let cnf = random_k_cnf(6, 10, 3, &mut rng);
        assert_eq!(cnf.n_vars, 6);
        assert_eq!(cnf.clauses.len(), 10);
        for clause in &cnf.clauses {
            assert_eq!(clause.len(), 3);
            let mut vars: Vec<usize> = clause.iter().map(|&(v, _)| v).collect();
            vars.sort_unstable();
            vars.dedup();
            assert_eq!(vars.len(), 3, "variables in a clause must be distinct");
        }
    }
}
