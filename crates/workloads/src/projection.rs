//! Projection scenarios with controlled fiber dimension.
//!
//! Algorithm 2's compensation weight is the volume of the fiber above each
//! projected point. How that volume can be computed changes qualitatively
//! with the fiber dimension: exact vertex enumeration visits `C(m, e)`
//! constraint bases (fine for shallow fibers, hopeless for deep ones), while
//! the telescoping estimator stays polynomial. These scenarios provide both
//! regimes with closed-form ground truth, so the `Exact`/`Estimated`
//! strategies of the projection generator can be validated and benchmarked
//! against known answers.

use cdb_constraint::{Atom, GeneralizedTuple};

/// The e7 cone in dimension `d`: `0 ≤ x_0 ≤ 1`, `0 ≤ x_i ≤ x_0` for
/// `i ≥ 1`. Projected onto `x_0` the fiber above `x_0 = t` is the cube
/// `[0, t]^{d−1}` (volume `t^{d−1}`), the projection is `[0, 1]`, and the
/// body's volume is `1/d` — every quantity of Algorithm 2 has a closed form
/// at any dimension, which makes this the reference shape for the deep-fiber
/// regime: at `d = 3` the fiber is a square and exact vertex enumeration is
/// trivial, while by `d ≳ 10` enumerating `C(2d, d−1)` bases per weight is
/// infeasible and only the estimated strategy remains.
pub fn deep_cone(dim: usize) -> GeneralizedTuple {
    assert!(dim >= 2, "the cone needs at least two coordinates");
    let mut atoms = Vec::with_capacity(2 * dim);
    let mut first_lo = vec![0i64; dim];
    first_lo[0] = -1;
    atoms.push(Atom::le_from_ints(&first_lo, 0)); // x_0 ≥ 0
    let mut first_hi = vec![0i64; dim];
    first_hi[0] = 1;
    atoms.push(Atom::le_from_ints(&first_hi, -1)); // x_0 ≤ 1
    for i in 1..dim {
        let mut lo = vec![0i64; dim];
        lo[i] = -1;
        atoms.push(Atom::le_from_ints(&lo, 0)); // x_i ≥ 0
        let mut hi = vec![0i64; dim];
        hi[i] = 1;
        hi[0] = -1;
        atoms.push(Atom::le_from_ints(&hi, 0)); // x_i ≤ x_0
    }
    GeneralizedTuple::new(dim, atoms)
}

/// Exact volume of [`deep_cone`]: `∫₀¹ t^{d−1} dt = 1/d`.
pub fn deep_cone_volume(dim: usize) -> f64 {
    1.0 / dim as f64
}

/// Exact fiber volume of [`deep_cone`] above `x_0 = t`: `t^{d−1}`.
pub fn deep_cone_fiber_volume(dim: usize, t: f64) -> f64 {
    t.clamp(0.0, 1.0).powi(dim as i32 - 1)
}

/// Length of the projection of [`deep_cone`] onto `x_0` (always `[0, 1]`).
pub fn deep_cone_projection_volume(_dim: usize) -> f64 {
    1.0
}

/// The stratified twin of [`deep_cone`]: the same cone translated so its
/// projection axis spans `[shift, shift + 1]`. Exercises the stratified
/// cell-selection layer away from the origin — the enumerated γ-grid keys
/// are large (and, for negative shifts, negative) integers instead of the
/// benign `0..K` of the unshifted cone, which is exactly where an
/// off-by-one in the bounding-box-to-cell-range conversion would hide. All
/// closed forms shift with it: the fiber above `x_0 = t` is
/// `[0, t − shift]^{d−1}`, the projection has length 1, and the volume is
/// `1/d`.
pub fn deep_cone_shifted(dim: usize, shift: i64) -> GeneralizedTuple {
    assert!(dim >= 2, "the cone needs at least two coordinates");
    let mut atoms = Vec::with_capacity(2 * dim);
    let mut first_lo = vec![0i64; dim];
    first_lo[0] = -1;
    atoms.push(Atom::le_from_ints(&first_lo, shift)); // x_0 ≥ shift
    let mut first_hi = vec![0i64; dim];
    first_hi[0] = 1;
    atoms.push(Atom::le_from_ints(&first_hi, -(shift + 1))); // x_0 ≤ shift + 1
    for i in 1..dim {
        let mut lo = vec![0i64; dim];
        lo[i] = -1;
        atoms.push(Atom::le_from_ints(&lo, 0)); // x_i ≥ 0
        let mut hi = vec![0i64; dim];
        hi[i] = 1;
        hi[0] = -1;
        atoms.push(Atom::le_from_ints(&hi, shift)); // x_i ≤ x_0 − shift
    }
    GeneralizedTuple::new(dim, atoms)
}

/// Exact fiber volume of [`deep_cone_shifted`] above `x_0 = t`:
/// `(t − shift)^{d−1}` clamped to the cone's height.
pub fn deep_cone_shifted_fiber_volume(dim: usize, shift: i64, t: f64) -> f64 {
    (t - shift as f64).clamp(0.0, 1.0).powi(dim as i32 - 1)
}

/// Exact projection volume of [`skewed_prism`] onto its first `base`
/// coordinates: the unit box, volume 1 — the closed form the stratified
/// multi-dimensional (`e = base ≥ 2`) enumeration gates against.
pub fn skewed_prism_projection_volume(_base: usize, _extra: usize) -> f64 {
    1.0
}

/// A `base`-dimensional unit box extruded along `extra` skewed coordinates:
/// `0 ≤ x_i ≤ 1` for `i < base`, and `0 ≤ x_j − x_0 ≤ 1` for the extruded
/// coordinates. Projected onto the first `base` coordinates, every fiber is
/// a translated unit cube of dimension `extra` — uniform fibers, so the
/// corrected and uncorrected projections coincide and the projection volume
/// is exactly 1. A harness shape for separating compensation *overhead*
/// from compensation *effect*.
pub fn skewed_prism(base: usize, extra: usize) -> GeneralizedTuple {
    assert!(base >= 1, "the prism needs a base");
    let dim = base + extra;
    let mut atoms = Vec::with_capacity(2 * dim);
    for i in 0..base {
        let mut lo = vec![0i64; dim];
        lo[i] = -1;
        atoms.push(Atom::le_from_ints(&lo, 0));
        let mut hi = vec![0i64; dim];
        hi[i] = 1;
        atoms.push(Atom::le_from_ints(&hi, -1));
    }
    for j in base..dim {
        let mut lo = vec![0i64; dim];
        lo[j] = -1;
        lo[0] = 1;
        atoms.push(Atom::le_from_ints(&lo, 0)); // x_j ≥ x_0
        let mut hi = vec![0i64; dim];
        hi[j] = 1;
        hi[0] = -1;
        atoms.push(Atom::le_from_ints(&hi, -1)); // x_j ≤ x_0 + 1
    }
    GeneralizedTuple::new(dim, atoms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deep_cone_closed_forms() {
        for d in [2usize, 3, 8, 12] {
            let cone = deep_cone(d);
            assert_eq!(cone.arity(), d);
            // The apex ray and a mid-height point.
            assert!(cone.satisfied_f64(&vec![0.0; d], 1e-9));
            let mut mid = vec![0.25; d];
            mid[0] = 0.5;
            assert!(cone.satisfied_f64(&mid, 1e-9));
            let mut out = vec![0.75; d];
            out[0] = 0.5;
            if d > 1 {
                assert!(!cone.satisfied_f64(&out, 1e-9));
            }
            assert!((deep_cone_volume(d) - 1.0 / d as f64).abs() < 1e-12);
            assert!((deep_cone_fiber_volume(d, 0.5) - 0.5f64.powi(d as i32 - 1)).abs() < 1e-12);
            assert_eq!(deep_cone_projection_volume(d), 1.0);
        }
    }

    #[test]
    fn deep_cone_geometry_matches_the_closed_form_in_low_dimension() {
        use cdb_geometry::volume::polytope_volume;
        for d in [2usize, 3] {
            let p = deep_cone(d).to_hpolytope();
            let v = polytope_volume(&p);
            assert!(
                (v - deep_cone_volume(d)).abs() < 1e-6,
                "d = {d}: got {v}, want {}",
                deep_cone_volume(d)
            );
        }
    }

    #[test]
    fn shifted_cone_closed_forms() {
        for (d, shift) in [(2usize, -3i64), (3, 5), (4, -1)] {
            let cone = deep_cone_shifted(d, shift);
            assert_eq!(cone.arity(), d);
            let s = shift as f64;
            // Apex and a mid-height point, both translated by the shift.
            let mut apex = vec![0.0; d];
            apex[0] = s;
            assert!(cone.satisfied_f64(&apex, 1e-9));
            let mut mid = vec![0.25; d];
            mid[0] = s + 0.5;
            assert!(cone.satisfied_f64(&mid, 1e-9));
            let mut out = vec![0.75; d];
            out[0] = s + 0.5;
            assert!(!cone.satisfied_f64(&out, 1e-9));
            assert!(
                (deep_cone_shifted_fiber_volume(d, shift, s + 0.5)
                    - deep_cone_fiber_volume(d, 0.5))
                .abs()
                    < 1e-12
            );
        }
        // shift = 0 degenerates to the plain cone.
        use cdb_geometry::volume::polytope_volume;
        let v = polytope_volume(&deep_cone_shifted(3, 0).to_hpolytope());
        assert!((v - deep_cone_volume(3)).abs() < 1e-6);
        let v_shift = polytope_volume(&deep_cone_shifted(3, -2).to_hpolytope());
        assert!((v_shift - deep_cone_volume(3)).abs() < 1e-6);
    }

    #[test]
    fn skewed_prism_has_unit_fibers() {
        let prism = skewed_prism(2, 3);
        assert_eq!(prism.arity(), 5);
        // A point in the prism: base in the box, extruded = base + offset.
        assert!(prism.satisfied_f64(&[0.5, 0.5, 0.7, 1.0, 1.4], 1e-9));
        assert!(!prism.satisfied_f64(&[0.5, 0.5, 0.3, 1.0, 1.4], 1e-9));
        // 5-dimensional volume is 1 (unit box times unit fibers).
        use cdb_geometry::volume::polytope_volume;
        let v = polytope_volume(&prism.to_hpolytope());
        assert!((v - 1.0).abs() < 1e-6, "prism volume {v}");
    }
}
