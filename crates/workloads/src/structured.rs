//! Sparse-structured scenario generators for the constraint-matrix layer.
//!
//! The paper's motivating workloads are mostly *structured*: GIS parcel
//! overlays are intersections of axis-aligned boxes (one nonzero per
//! constraint row) and SAT-style encodings produce rows touching a handful
//! of variables. These generators build such systems directly as
//! [`HPolytope`]s so the structure detector at construction
//! ([`cdb_geometry::ConstraintMatrix::detect`]) can pick its axis-aligned or
//! CSR fast path — they are the bodies behind the structured rows of the
//! walk perf report (`BENCH_walk.json`) and the kernel-equivalence property
//! suite in `cdb-sampler`.
//!
//! Every generator documents which representation its output detects as;
//! the unit tests pin that, so a change to the detection thresholds shows up
//! here and not as a silent perf regression.

use rand::Rng;

use cdb_geometry::{HPolytope, Halfspace};

/// A stack of `layers` random axis-aligned boxes intersected into one
/// polytope, all containing the common core `[-core, core]^dim` — the
/// H-representation of a GIS parcel-overlay query restricted to one cell.
///
/// Every one of the `2 · dim · layers` rows has exactly one nonzero, so the
/// constraint matrix detects as `"axis"` and the walk's chord becomes O(rows)
/// interval clipping with no matrix–vector product. Returns the polytope and
/// its exact volume (the intersection is itself a box: per coordinate, the
/// tightest of the stacked intervals).
pub fn box_stack<R: Rng + ?Sized>(
    dim: usize,
    layers: usize,
    core: f64,
    rng: &mut R,
) -> (HPolytope, f64) {
    assert!(dim >= 1 && layers >= 1 && core > 0.0);
    let mut halfspaces = Vec::with_capacity(2 * dim * layers);
    let mut lo = vec![f64::NEG_INFINITY; dim];
    let mut hi = vec![f64::INFINITY; dim];
    for _ in 0..layers {
        for coord in 0..dim {
            // Each layer's interval strictly contains the core.
            let l = -core - rng.gen_range(0.0..core);
            let h = core + rng.gen_range(0.0..core);
            halfspaces.push(Halfspace::lower_bound(dim, coord, l));
            halfspaces.push(Halfspace::upper_bound(dim, coord, h));
            lo[coord] = lo[coord].max(l);
            hi[coord] = hi[coord].min(h);
        }
    }
    let volume = lo.iter().zip(&hi).map(|(&l, &h)| h - l).product();
    (HPolytope::new(dim, halfspaces), volume)
}

/// A banded "overlay intersection" system: the box `[-1, 1]^dim` coupled by
/// the band `|x_i − x_{i+1}| ≤ c_i` for each adjacent pair, with random
/// coupling widths `c_i ∈ [coupling/2, coupling]` — the shape of a GIS
/// overlay where adjacent strips constrain each other.
///
/// Box rows carry one nonzero and band rows two, so for `dim ≥ 8` the matrix
/// detects as `"sparse"` (CSR); the chord's `A·dir` product then costs
/// O(nnz) ≈ 6·dim instead of the dense 4·dim². The origin is feasible with
/// margin `min(1, coupling/2)`, so the polytope is always well-bounded.
pub fn banded_overlay<R: Rng + ?Sized>(dim: usize, coupling: f64, rng: &mut R) -> HPolytope {
    assert!(dim >= 2 && coupling > 0.0);
    let mut halfspaces = Vec::with_capacity(2 * dim + 2 * (dim - 1));
    for coord in 0..dim {
        halfspaces.push(Halfspace::lower_bound(dim, coord, -1.0));
        halfspaces.push(Halfspace::upper_bound(dim, coord, 1.0));
    }
    for i in 0..dim - 1 {
        let c = rng.gen_range(coupling / 2.0..coupling);
        let mut fwd = vec![0.0; dim];
        fwd[i] = 1.0;
        fwd[i + 1] = -1.0;
        halfspaces.push(Halfspace::from_slice(&fwd, c));
        let mut bwd = vec![0.0; dim];
        bwd[i] = -1.0;
        bwd[i + 1] = 1.0;
        halfspaces.push(Halfspace::from_slice(&bwd, c));
    }
    HPolytope::new(dim, halfspaces)
}

/// A SAT-style sparse system: the box `[0, 1]^n_vars` cut by `n_rows` random
/// `k`-literal rows `Σ ±x_j ≤ b` over `k` distinct variables each, with `b`
/// chosen so the box center keeps slack at least `margin` — the linear
/// relaxation shape of the Section 4.1.3 CNF encodings.
///
/// For `n_vars ≥ 8` and small `k` the matrix detects as `"sparse"`; each
/// chord then touches only `k` entries per cut row.
pub fn sat_sparse_system<R: Rng + ?Sized>(
    n_vars: usize,
    n_rows: usize,
    k: usize,
    margin: f64,
    rng: &mut R,
) -> HPolytope {
    assert!(k >= 1 && k <= n_vars && margin > 0.0);
    let mut halfspaces = Vec::with_capacity(2 * n_vars + n_rows);
    for v in 0..n_vars {
        halfspaces.push(Halfspace::lower_bound(n_vars, v, 0.0));
        halfspaces.push(Halfspace::upper_bound(n_vars, v, 1.0));
    }
    for _ in 0..n_rows {
        let mut normal = vec![0.0; n_vars];
        let mut center_lhs = 0.0;
        let mut picked = 0usize;
        while picked < k {
            let v = rng.gen_range(0..n_vars);
            if normal[v] != 0.0 {
                continue;
            }
            let sign = if rng.gen_range(0..2) == 0 { 1.0 } else { -1.0 };
            normal[v] = sign;
            center_lhs += sign * 0.5;
            picked += 1;
        }
        let offset = center_lhs + margin + rng.gen_range(0.0..margin);
        halfspaces.push(Halfspace::from_slice(&normal, offset));
    }
    HPolytope::new(n_vars, halfspaces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn box_stack_detects_axis_and_has_the_stated_volume() {
        let mut rng = StdRng::seed_from_u64(41);
        let (p, vol) = box_stack(6, 4, 0.5, &mut rng);
        assert_eq!(p.matrix().kind(), "axis");
        assert_eq!(p.n_constraints(), 2 * 6 * 4);
        // The core is inside, so the volume is at least the core's.
        assert!(vol >= 1.0 - 1e-12);
        assert!(p.contains_slice(&[0.0; 6], 0.0));
        // The exact volume matches the bounding box of the intersection.
        let (lo, hi) = p.bounding_box().expect("bounded");
        let bb_vol: f64 = lo
            .as_slice()
            .iter()
            .zip(hi.as_slice())
            .map(|(&l, &h)| h - l)
            .product();
        assert!((vol - bb_vol).abs() < 1e-9);
        assert!(p.well_bounded().is_some());
    }

    #[test]
    fn banded_overlay_detects_sparse_and_is_well_bounded() {
        let mut rng = StdRng::seed_from_u64(42);
        let p = banded_overlay(16, 0.5, &mut rng);
        assert_eq!(p.matrix().kind(), "sparse");
        assert_eq!(p.n_constraints(), 2 * 16 + 2 * 15);
        // nnz = one per box row + two per band row.
        assert_eq!(p.matrix().nnz(), 2 * 16 + 4 * 15);
        assert!(p.contains_slice(&[0.0; 16], 0.0));
        assert!(p.well_bounded().is_some());
        // The band actually cuts: a point alternating ±1 violates it.
        let mut zigzag = [1.0; 16];
        for (i, z) in zigzag.iter_mut().enumerate() {
            if i % 2 == 1 {
                *z = -1.0;
            }
        }
        assert!(!p.contains_slice(&zigzag, 1e-9));
    }

    #[test]
    fn sat_sparse_system_detects_sparse_and_keeps_the_center_feasible() {
        let mut rng = StdRng::seed_from_u64(43);
        let p = sat_sparse_system(16, 24, 3, 0.1, &mut rng);
        assert_eq!(p.matrix().kind(), "sparse");
        assert_eq!(p.n_constraints(), 2 * 16 + 24);
        assert_eq!(p.matrix().nnz(), 2 * 16 + 3 * 24);
        assert!(p.contains_slice(&[0.5; 16], 0.0));
        assert!(p.well_bounded().is_some());
    }

    #[test]
    fn generators_are_seed_reproducible() {
        let a = banded_overlay(8, 0.4, &mut StdRng::seed_from_u64(7));
        let b = banded_overlay(8, 0.4, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
