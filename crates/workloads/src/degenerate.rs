//! High-aspect degenerate bodies with closed-form volumes.
//!
//! These families stress the *rounding* path of the generators: a needle box
//! or a squeezed simplex has inscribed/circumscribed radii whose ratio grows
//! with the aspect parameter, so without the well-rounding affine transform
//! the telescoping volume chain gets long and the walk mixes slowly. Every
//! body here keeps an exact closed-form volume, which is what lets the
//! statistical suite gate the rounding path against ground truth and the load
//! harness include degenerate traffic without losing its oracle.
//!
//! Aspect parameters are powers-of-two-friendly integers so that the closed
//! forms (`aspect⁻⁽ᵈ⁻¹⁾`, `1/(squeeze · d!)`) stay exactly representable.

use cdb_constraint::{Atom, GeneralizedRelation, GeneralizedTuple};

use crate::polytopes::simplex_volume;

/// A degenerate body: its relation and exact volume.
#[derive(Clone, Debug)]
pub struct DegenerateBody {
    /// Short family name (stable across calls; used as a relation name).
    pub name: &'static str,
    /// The body as a one-tuple generalized relation.
    pub relation: GeneralizedRelation,
    /// Exact closed-form volume.
    pub exact_volume: f64,
}

/// The needle box `[0, 1/aspect]^{d-1} × [0, 1]`: one unit-length axis and
/// `d-1` thin axes. Exact volume `aspect^{-(d-1)}`.
pub fn needle_box(dim: usize, aspect: u32) -> DegenerateBody {
    assert!(dim >= 2, "a needle needs a long axis and a thin one");
    assert!(aspect >= 2, "aspect 1 is just a cube");
    let thin = 1.0 / f64::from(aspect);
    let mut hi = vec![thin; dim];
    hi[dim - 1] = 1.0;
    DegenerateBody {
        name: "needle_box",
        relation: GeneralizedRelation::from_tuple(GeneralizedTuple::from_box_f64(
            &vec![0.0; dim],
            &hi,
        )),
        exact_volume: thin.powi(dim as i32 - 1),
    }
}

/// The squeezed simplex `{x ≥ 0, squeeze·x₀ + Σ_{i≥1} x_i ≤ 1}` — the
/// standard simplex scaled by `1/squeeze` along its first axis. Exact volume
/// `1/(squeeze · d!)`.
pub fn thin_simplex(dim: usize, squeeze: u32) -> DegenerateBody {
    assert!(dim >= 2, "a thin simplex needs at least two axes");
    assert!(squeeze >= 2, "squeeze 1 is the standard simplex");
    let mut atoms: Vec<Atom> = (0..dim)
        .map(|i| {
            let mut coeffs = vec![0i64; dim];
            coeffs[i] = -1;
            Atom::le_from_ints(&coeffs, 0)
        })
        .collect();
    let mut facet = vec![1i64; dim];
    facet[0] = i64::from(squeeze);
    atoms.push(Atom::le_from_ints(&facet, -1));
    DegenerateBody {
        name: "thin_simplex",
        relation: GeneralizedRelation::from_tuple(GeneralizedTuple::new(dim, atoms)),
        exact_volume: simplex_volume(dim) / f64::from(squeeze),
    }
}

/// Every degenerate family in dimension `dim` at the given aspect/squeeze
/// factor — the suite the statistical gates and the load harness's
/// `degenerate` mix iterate over.
pub fn suite(dim: usize, aspect: u32) -> Vec<DegenerateBody> {
    vec![needle_box(dim, aspect), thin_simplex(dim, aspect)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_geometry::volume::polytope_volume;

    #[test]
    fn needle_box_volume_matches_the_polytope_integrator() {
        let body = needle_box(3, 32);
        let polys = body.relation.to_polytopes();
        assert_eq!(polys.len(), 1);
        assert!((polytope_volume(&polys[0]) - body.exact_volume).abs() < 1e-12);
        assert!((body.exact_volume - (1.0 / 32.0f64).powi(2)).abs() < 1e-15);
    }

    #[test]
    fn thin_simplex_volume_matches_the_closed_form() {
        // The LP-based polytope integrator is exact on simplices too.
        let body = thin_simplex(3, 16);
        let polys = body.relation.to_polytopes();
        assert_eq!(polys.len(), 1);
        assert!((polytope_volume(&polys[0]) - body.exact_volume).abs() < 1e-12);
        assert!((body.exact_volume - 1.0 / (16.0 * 6.0)).abs() < 1e-15);
    }

    #[test]
    fn suite_names_are_distinct() {
        let suite = suite(4, 8);
        assert_eq!(suite.len(), 2);
        assert_ne!(suite[0].name, suite[1].name);
        for body in &suite {
            assert!(body.exact_volume > 0.0);
            assert_eq!(body.relation.arity(), 4);
        }
    }
}
