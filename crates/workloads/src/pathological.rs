//! Adversarial workloads for the resilience suite: relations whose
//! composed queries are *structurally* hopeless, so rejection loops spin at
//! (near-)zero acceptance until something bounds them.
//!
//! The paper's poly-related restriction (Proposition 4.1) exists precisely
//! because these inputs are easy to write down: an intersection or
//! difference exponentially smaller than its operands defeats any
//! rejection-based estimator. The resilience layer must turn that infinite
//! grind into a prompt, typed error — these constructors supply the grind.

use cdb_constraint::{GeneralizedRelation, GeneralizedTuple};

/// Two unit squares overlapping in a vertical sliver of the given `width`
/// (e.g. `1e-6`): the intersection generator samples the smaller operand
/// and accepts with probability ≈ `width`, so with the default acceptance
/// floor the poly-related check fails — and with a budget installed the
/// attempt counter trips long before the retry cap is reached.
pub fn sliver_intersection(width: f64) -> [GeneralizedRelation; 2] {
    assert!(width > 0.0 && width < 1.0, "sliver width must be in (0, 1)");
    [
        GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[1.0, 1.0]),
        GeneralizedRelation::from_box_f64(&[1.0 - width, 0.0], &[2.0 - width, 1.0]),
    ]
}

/// A unit square and a subtrahend covering all but a vertical sliver of
/// `width` of it: `S₁ − S₂` is not poly-related to `S₁`, so the difference
/// generator's rejection loop accepts with probability ≈ `width`.
pub fn vanishing_difference(width: f64) -> (GeneralizedRelation, GeneralizedRelation) {
    assert!(width > 0.0 && width < 1.0, "sliver width must be in (0, 1)");
    (
        GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[1.0, 1.0]),
        GeneralizedRelation::from_box_f64(&[width, 0.0], &[2.0, 1.0]),
    )
}

/// A tiny axis-aligned box of side `side` at the center of the huge cube
/// `[0, extent]^d`, returned with that cube's corner coordinates: the
/// bounding-box rejection baseline accepts with probability
/// `(side / extent)^d`, the paper's motivating collapse. Feed the tuple and
/// the box to a rejection sampler to exercise attempt-budget trips.
pub fn needle_in_haystack(
    d: usize,
    side: f64,
    extent: f64,
) -> (GeneralizedTuple, Vec<f64>, Vec<f64>) {
    assert!(d > 0, "dimension must be positive");
    assert!(
        side > 0.0 && side < extent,
        "the needle must fit inside the haystack"
    );
    let mid = extent / 2.0;
    let lo: Vec<f64> = vec![mid - side / 2.0; d];
    let hi: Vec<f64> = vec![mid + side / 2.0; d];
    let needle = GeneralizedTuple::from_box_f64(&lo, &hi);
    (needle, vec![0.0; d], vec![extent; d])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sliver_intersection_geometry() {
        let [a, b] = sliver_intersection(1e-6);
        // The sliver itself belongs to both operands...
        assert!(a.contains_f64(&[1.0 - 5e-7, 0.5]));
        assert!(b.contains_f64(&[1.0 - 5e-7, 0.5]));
        // ...but the bulk of either operand does not intersect the other.
        assert!(!b.contains_f64(&[0.5, 0.5]));
        assert!(!a.contains_f64(&[1.5, 0.5]));
    }

    #[test]
    fn vanishing_difference_geometry() {
        let (s1, s2) = vanishing_difference(1e-6);
        // Only the sliver survives the subtraction.
        assert!(s1.contains_f64(&[5e-7, 0.5]) && !s2.contains_f64(&[5e-7, 0.5]));
        assert!(s2.contains_f64(&[0.5, 0.5]));
    }

    #[test]
    fn needle_geometry() {
        let (needle, lo, hi) = needle_in_haystack(2, 1e-4, 100.0);
        assert!(needle.satisfied_f64(&[50.0, 50.0], 1e-12));
        assert!(!needle.satisfied_f64(&[50.1, 50.0], 1e-12));
        assert_eq!((lo, hi), (vec![0.0, 0.0], vec![100.0, 100.0]));
    }
}
