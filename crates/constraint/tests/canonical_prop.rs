//! Property suite for the canonicalization pass behind the prepared-relation
//! store's cache keys (`cdb_constraint::canonical`).
//!
//! Each property throws randomized *syntactic* rewrites at a formula — atom
//! permutation, positive coefficient scaling, `≥`/`>` orientation flips,
//! equality sign flips, bound-variable renaming — and asserts the canonical
//! key is unchanged, while semantically distinct perturbations must keep
//! distinct keys. `PROPTEST_CASES` scales the case count in CI quick mode.

use cdb_constraint::canonical::CanonicalKey;
use cdb_constraint::{Atom, CompOp, Formula, LinTerm};
use cdb_num::Rational;
use proptest::collection::vec;
use proptest::prelude::*;

const ARITY: usize = 5;

/// Raw atom material: five small integer coefficients, a constant, and an
/// operator selector.
fn raw_atom() -> impl Strategy<Value = (Vec<i64>, i64, u8)> {
    (vec(-4i64..5, ARITY), -6i64..7, 0u8..5)
}

fn op_of(sel: u8) -> CompOp {
    match sel {
        0 => CompOp::Lt,
        1 => CompOp::Le,
        2 => CompOp::Eq,
        3 => CompOp::Ge,
        _ => CompOp::Gt,
    }
}

fn atom_of(coeffs: &[i64], constant: i64, sel: u8) -> Atom {
    Atom::new(LinTerm::from_ints(coeffs, constant), op_of(sel))
}

fn conjunction(atoms: &[(Vec<i64>, i64, u8)]) -> Formula {
    Formula::and(
        atoms
            .iter()
            .map(|(c, k, s)| Formula::Atom(atom_of(c, *k, *s)))
            .collect(),
    )
}

fn key(f: &Formula) -> CanonicalKey {
    CanonicalKey::of_formula(f, ARITY)
}

proptest! {
    #[test]
    fn atom_permutation_is_invisible(
        atoms in vec(raw_atom(), 1..6),
        rotation in 0usize..6,
    ) {
        let forward = conjunction(&atoms);
        // Reverse and rotate: together these generate arbitrary orders over
        // the small lists we draw.
        let mut shuffled: Vec<_> = atoms.iter().cloned().rev().collect();
        let by = rotation % shuffled.len().max(1);
        shuffled.rotate_left(by);
        let backward = conjunction(&shuffled);
        prop_assert_eq!(key(&forward), key(&backward));
    }

    #[test]
    fn positive_scaling_is_invisible(
        atoms in vec(raw_atom(), 1..5),
        nums in vec(1i64..6, 4),
        dens in vec(1i64..6, 4),
    ) {
        let plain = conjunction(&atoms);
        let scaled = Formula::and(
            atoms
                .iter()
                .enumerate()
                .map(|(i, (c, k, s))| {
                    let factor = Rational::from_ratio(nums[i % nums.len()], dens[i % dens.len()]);
                    let term = LinTerm::from_ints(c, *k).scale(&factor);
                    Formula::Atom(Atom::new(term, op_of(*s)))
                })
                .collect(),
        );
        prop_assert_eq!(key(&plain), key(&scaled));
    }

    #[test]
    fn orientation_flip_is_invisible(atoms in vec(raw_atom(), 1..5)) {
        let plain = conjunction(&atoms);
        // t op 0  ≡  (−t) flip(op) 0 for every comparison operator.
        let flipped = Formula::and(
            atoms
                .iter()
                .map(|(c, k, s)| {
                    let term = LinTerm::from_ints(c, *k).neg();
                    let op = match op_of(*s) {
                        CompOp::Lt => CompOp::Gt,
                        CompOp::Le => CompOp::Ge,
                        CompOp::Eq => CompOp::Eq,
                        CompOp::Ge => CompOp::Le,
                        CompOp::Gt => CompOp::Lt,
                    };
                    Formula::Atom(Atom::new(term, op))
                })
                .collect(),
        );
        prop_assert_eq!(key(&plain), key(&flipped));
    }

    #[test]
    fn bound_variable_renaming_is_invisible(
        atoms in vec(raw_atom(), 1..5),
        perm_sel in 0u8..6,
    ) {
        // ∃ x2,x3,x4 . φ(x0..x4) with the three bound columns permuted.
        let perms: [[usize; 3]; 6] = [
            [2, 3, 4], [2, 4, 3], [3, 2, 4], [3, 4, 2], [4, 2, 3], [4, 3, 2],
        ];
        let perm = perms[perm_sel as usize];
        let plain = Formula::exists(vec![2, 3, 4], conjunction(&atoms));
        let renamed_atoms: Vec<_> = atoms
            .iter()
            .map(|(c, k, s)| {
                let mut coeffs = c.clone();
                for (from, to) in (2..5).zip(perm) {
                    coeffs[to] = c[from];
                }
                (coeffs, *k, *s)
            })
            .collect();
        let renamed = Formula::exists(vec![2, 3, 4], conjunction(&renamed_atoms));
        prop_assert_eq!(
            CanonicalKey::of_formula(&plain, 2),
            CanonicalKey::of_formula(&renamed, 2)
        );
    }

    #[test]
    fn constant_shift_changes_the_key(atoms in vec(raw_atom(), 1..4)) {
        // Shifting the first atom's constant changes its satisfied set, so
        // the keys must differ (guards against over-canonicalization).
        let plain = conjunction(&atoms);
        let mut shifted = atoms.clone();
        shifted[0].1 += 20; // far outside the drawn range: no accidental alias
        let moved = conjunction(&shifted);
        prop_assert!(key(&plain) != key(&moved));
    }

    #[test]
    fn strictness_changes_the_key(coeffs in vec(1i64..5, ARITY), constant in -6i64..7) {
        let le = Formula::Atom(atom_of(&coeffs, constant, 1));
        let lt = Formula::Atom(atom_of(&coeffs, constant, 0));
        prop_assert!(key(&le) != key(&lt));
    }

    #[test]
    fn canonicalize_is_idempotent(atoms in vec(raw_atom(), 1..6)) {
        let f = Formula::exists(vec![3, 4], conjunction(&atoms));
        let once = f.canonicalize();
        let twice = once.canonicalize();
        prop_assert_eq!(&once, &twice);
        prop_assert_eq!(
            CanonicalKey::of_formula(&once, ARITY),
            CanonicalKey::of_formula(&twice, ARITY)
        );
    }
}
