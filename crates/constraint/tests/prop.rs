//! Property-based tests for the symbolic layer: DNF conversion and
//! Fourier–Motzkin elimination preserve semantics.

use cdb_constraint::{qe, Atom, CompOp, Formula, GeneralizedRelation, GeneralizedTuple, LinTerm};
use proptest::prelude::*;

/// Strategy producing random atoms over `arity` variables with small integer
/// coefficients.
fn atom(arity: usize) -> impl Strategy<Value = Atom> {
    (
        proptest::collection::vec(-3i64..=3, arity),
        -4i64..=4,
        prop_oneof![
            Just(CompOp::Le),
            Just(CompOp::Lt),
            Just(CompOp::Ge),
            Just(CompOp::Gt)
        ],
    )
        .prop_map(move |(coeffs, c, op)| Atom::new(LinTerm::from_ints(&coeffs, c), op))
}

/// A small random quantifier-free formula over `arity` variables.
fn formula(arity: usize) -> impl Strategy<Value = Formula> {
    let leaf = atom(arity).prop_map(Formula::Atom);
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Formula::and),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Formula::or),
            inner.prop_map(Formula::not),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dnf_preserves_membership(f in formula(2), pts in proptest::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 8)) {
        let dnf = f.to_dnf().unwrap();
        for (x, y) in pts {
            let p = [x, y];
            let direct = f.eval_f64(&p, 1e-9).unwrap();
            let via_dnf = dnf.iter().any(|conj| conj.iter().all(|a| a.satisfied_f64(&p, 1e-9)));
            prop_assert_eq!(direct, via_dnf, "point {:?}", p);
        }
    }

    #[test]
    fn relation_roundtrip_preserves_membership(f in formula(2), pts in proptest::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 8)) {
        let rel = GeneralizedRelation::from_formula(2, &f).unwrap();
        for (x, y) in pts {
            let p = [x, y];
            // Skip points that sit within tolerance of some atom's boundary:
            // the relation drops tuples with empty closure, which can flip
            // membership exactly on measure-zero boundaries.
            let near_boundary = rel.tuples().iter().flat_map(|t| t.atoms()).chain(
                std::iter::once(&Atom::le_from_ints(&[0, 0], 1)) // dummy, never near
            ).any(|a| a.term().eval_f64(&p).abs() < 1e-6);
            if near_boundary {
                continue;
            }
            let direct = f.eval_f64(&p, 0.0).unwrap();
            prop_assert_eq!(direct, rel.contains_f64(&p), "point {:?}", p);
        }
    }

    #[test]
    fn fourier_motzkin_projection_is_sound_and_complete(
        atoms in proptest::collection::vec(atom(3), 1..6),
        pts in proptest::collection::vec((-4.0f64..4.0, -4.0f64..4.0), 6),
        zs in proptest::collection::vec(-4.0f64..4.0, 12),
    ) {
        let tuple = GeneralizedTuple::new(3, atoms);
        let projected = qe::project_tuple(&tuple, &[0, 1]);
        for (x, y) in pts {
            // Soundness of the witness direction: if some z makes (x,y,z)
            // satisfy the tuple, then (x,y) is in the projection.
            let witnessed = zs.iter().any(|&z| tuple.satisfied_f64(&[x, y, z], 1e-9));
            if witnessed {
                prop_assert!(projected.satisfied_f64(&[x, y], 1e-6), "missing witness at ({x}, {y})");
            }
            // Conversely, if (x,y) is strictly outside the projection, no z can work.
            if !projected.satisfied_f64(&[x, y], 1e-6) {
                for &z in &zs {
                    prop_assert!(!tuple.satisfied_f64(&[x, y, z], 1e-9), "spurious exclusion at ({x}, {y}, {z})");
                }
            }
        }
    }

    #[test]
    fn elimination_preserves_feasibility(atoms in proptest::collection::vec(atom(3), 1..6)) {
        // If the conjunction has a feasible closure, so does its projection,
        // and vice versa (Fourier–Motzkin is an equivalence).
        let tuple = GeneralizedTuple::new(3, atoms);
        let eliminated = qe::eliminate_variables(tuple.atoms(), &[2]);
        let reduced = GeneralizedTuple::new(3, eliminated);
        prop_assert_eq!(tuple.closure_is_empty(), reduced.closure_is_empty());
    }

    #[test]
    fn union_and_intersection_membership(lo1 in -3.0f64..0.0, hi1 in 0.5f64..3.0, lo2 in -3.0f64..0.0, hi2 in 0.5f64..3.0, pts in proptest::collection::vec((-4.0f64..4.0, -4.0f64..4.0), 10)) {
        let a = GeneralizedRelation::from_box_f64(&[lo1, lo1], &[hi1, hi1]);
        let b = GeneralizedRelation::from_box_f64(&[lo2, lo2], &[hi2, hi2]);
        let u = a.union(&b);
        let i = a.intersection(&b);
        for (x, y) in pts {
            let p = [x, y];
            prop_assert_eq!(u.contains_f64(&p), a.contains_f64(&p) || b.contains_f64(&p));
            prop_assert_eq!(i.contains_f64(&p), a.contains_f64(&p) && b.contains_f64(&p));
        }
    }
}
