//! A small text syntax for FO+LIN formulas.
//!
//! The grammar (whitespace-insensitive):
//!
//! ```text
//! formula  := or
//! or       := and ("or" and)*
//! and      := unary ("and" unary)*
//! unary    := "not" unary | "exists" varlist "." formula | primary
//! primary  := "(" formula ")" | "true" | "false" | relatom | linatom
//! relatom  := NAME "(" varlist ")"
//! linatom  := linexpr CMP linexpr          CMP ∈ { <=, <, >=, >, = }
//! linexpr  := ["-"] linterm (("+"|"-") linterm)*
//! linterm  := NUMBER ["*" VAR] | VAR
//! varlist  := VAR ("," VAR)*
//! VAR      := "x" INTEGER        NUMBER := INTEGER | INTEGER "/" INTEGER | DECIMAL
//! ```
//!
//! Example: `exists x2. (R(x0, x2) and x0 + 2*x1 <= 3) or not (x1 > 1/2)`.

use cdb_num::Rational;

use crate::atom::{Atom, CompOp};
use crate::formula::Formula;
use crate::term::LinTerm;

/// Error produced when parsing a formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset in the input at which the problem was detected.
    pub position: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a formula, using `arity` as the ambient number of variables (every
/// `x<i>` must satisfy `i < arity`).
pub fn parse_formula(input: &str, arity: usize) -> Result<Formula, ParseError> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
        arity,
    };
    let f = p.parse_or()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.error("unexpected trailing input"));
    }
    Ok(f)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    arity: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            position: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek_word(&mut self) -> Option<String> {
        self.skip_ws();
        let start = self.pos;
        let mut end = start;
        while end < self.input.len()
            && (self.input[end].is_ascii_alphanumeric() || self.input[end] == b'_')
        {
            end += 1;
        }
        if end == start {
            None
        } else {
            Some(String::from_utf8_lossy(&self.input[start..end]).into_owned())
        }
    }

    fn eat_word(&mut self, word: &str) -> bool {
        let before = self.pos;
        self.skip_ws();
        if let Some(w) = self.peek_word() {
            if w == word {
                self.skip_ws();
                self.pos += word.len();
                return true;
            }
        }
        self.pos = before;
        false
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        self.skip_ws();
        if self.input[self.pos..].starts_with(sym.as_bytes()) {
            self.pos += sym.len();
            true
        } else {
            false
        }
    }

    fn parse_or(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.parse_and()?];
        while self.eat_word("or") {
            parts.push(self.parse_and()?);
        }
        Ok(Formula::or(parts))
    }

    fn parse_and(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.parse_unary()?];
        while self.eat_word("and") {
            parts.push(self.parse_unary()?);
        }
        Ok(Formula::and(parts))
    }

    fn parse_unary(&mut self) -> Result<Formula, ParseError> {
        if self.eat_word("not") {
            return Ok(Formula::not(self.parse_unary()?));
        }
        if self.eat_word("exists") {
            let vars = self.parse_varlist()?;
            if !self.eat_symbol(".") {
                return Err(self.error("expected '.' after the quantified variables"));
            }
            // The quantifier scopes as far to the right as possible.
            return Ok(Formula::exists(vars, self.parse_or()?));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Formula, ParseError> {
        self.skip_ws();
        if self.eat_symbol("(") {
            let f = self.parse_or()?;
            if !self.eat_symbol(")") {
                return Err(self.error("expected ')'"));
            }
            return Ok(f);
        }
        if self.eat_word("true") {
            return Ok(Formula::True);
        }
        if self.eat_word("false") {
            return Ok(Formula::False);
        }
        // Relation atom: a name that is not a variable, followed by '('.
        let save = self.pos;
        if let Some(word) = self.peek_word() {
            if !is_variable(&word) && !word.chars().next().unwrap_or('0').is_ascii_digit() {
                self.skip_ws();
                self.pos += word.len();
                if self.eat_symbol("(") {
                    let vars = self.parse_varlist()?;
                    if !self.eat_symbol(")") {
                        return Err(self.error("expected ')' after relation arguments"));
                    }
                    return Ok(Formula::rel(word, vars));
                }
                self.pos = save;
            }
        }
        // Otherwise: a linear comparison.
        let lhs = self.parse_linexpr()?;
        let op = self.parse_cmp()?;
        let rhs = self.parse_linexpr()?;
        let term = lhs.sub(&rhs);
        Ok(Formula::Atom(Atom::new(term, op)))
    }

    fn parse_cmp(&mut self) -> Result<CompOp, ParseError> {
        self.skip_ws();
        for (sym, op) in [
            ("<=", CompOp::Le),
            (">=", CompOp::Ge),
            ("<", CompOp::Lt),
            (">", CompOp::Gt),
            ("=", CompOp::Eq),
        ] {
            if self.eat_symbol(sym) {
                return Ok(op);
            }
        }
        Err(self.error("expected a comparison operator (<=, <, >=, >, =)"))
    }

    fn parse_varlist(&mut self) -> Result<Vec<usize>, ParseError> {
        let mut vars = vec![self.parse_var()?];
        while self.eat_symbol(",") {
            vars.push(self.parse_var()?);
        }
        Ok(vars)
    }

    fn parse_var(&mut self) -> Result<usize, ParseError> {
        self.skip_ws();
        let word = self
            .peek_word()
            .ok_or_else(|| self.error("expected a variable"))?;
        if !is_variable(&word) {
            return Err(self.error("expected a variable of the form x<index>"));
        }
        let idx: usize = word[1..]
            .parse()
            .map_err(|_| self.error("invalid variable index"))?;
        if idx >= self.arity {
            return Err(self.error(&format!(
                "variable x{idx} exceeds the declared arity {}",
                self.arity
            )));
        }
        self.skip_ws();
        self.pos += word.len();
        Ok(idx)
    }

    fn parse_number(&mut self) -> Result<Rational, ParseError> {
        self.skip_ws();
        let start = self.pos;
        let mut end = start;
        while end < self.input.len()
            && (self.input[end].is_ascii_digit()
                || self.input[end] == b'.'
                || self.input[end] == b'/')
        {
            end += 1;
        }
        if end == start {
            return Err(self.error("expected a number"));
        }
        let text = String::from_utf8_lossy(&self.input[start..end]).into_owned();
        let value = Rational::from_decimal(&text).ok_or_else(|| self.error("invalid number"))?;
        self.pos = end;
        Ok(value)
    }

    fn parse_linexpr(&mut self) -> Result<LinTerm, ParseError> {
        self.skip_ws();
        let mut negate_first = false;
        if self.eat_symbol("-") {
            negate_first = true;
        }
        let mut acc = self.parse_linterm()?;
        if negate_first {
            acc = acc.neg();
        }
        loop {
            self.skip_ws();
            if self.eat_symbol("+") {
                acc = acc.add(&self.parse_linterm()?);
            } else if self.peek_is_minus_term() && self.eat_symbol("-") {
                acc = acc.sub(&self.parse_linterm()?);
            } else {
                break;
            }
        }
        Ok(acc)
    }

    /// A '-' continues the linear expression only when followed by a number or
    /// a variable (so `x0 <= -1` parses the sign as part of the number).
    fn peek_is_minus_term(&mut self) -> bool {
        self.skip_ws();
        self.input.get(self.pos) == Some(&b'-')
    }

    fn parse_linterm(&mut self) -> Result<LinTerm, ParseError> {
        self.skip_ws();
        // A term is NUMBER [* VAR] or VAR.
        if let Some(word) = self.peek_word() {
            if is_variable(&word) {
                let idx = self.parse_var()?;
                return Ok(LinTerm::var(self.arity, idx));
            }
        }
        let coeff = self.parse_number()?;
        if self.eat_symbol("*") {
            let idx = self.parse_var()?;
            return Ok(LinTerm::var(self.arity, idx).scale(&coeff));
        }
        Ok(LinTerm::constant(self.arity, coeff))
    }
}

fn is_variable(word: &str) -> bool {
    word.len() >= 2 && word.starts_with('x') && word[1..].chars().all(|c| c.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_inequalities() {
        let f = parse_formula("x0 + 2*x1 <= 3", 2).unwrap();
        assert!(f.eval_f64(&[1.0, 1.0], 1e-9).unwrap());
        assert!(!f.eval_f64(&[2.0, 1.0], 1e-9).unwrap());
        let g = parse_formula("x0 >= 1/2", 1).unwrap();
        assert!(g.eval_f64(&[0.75], 1e-9).unwrap());
        assert!(!g.eval_f64(&[0.25], 1e-9).unwrap());
        let h = parse_formula("x0 <= -1", 1).unwrap();
        assert!(h.eval_f64(&[-2.0], 1e-9).unwrap());
        assert!(!h.eval_f64(&[0.0], 1e-9).unwrap());
    }

    #[test]
    fn parse_boolean_structure() {
        let f = parse_formula("(x0 >= 0 and x0 <= 1) or not (x1 > 1/2)", 2).unwrap();
        assert!(f.eval_f64(&[0.5, 0.9], 1e-9).unwrap()); // first disjunct
        assert!(f.eval_f64(&[5.0, 0.25], 1e-9).unwrap()); // second disjunct
        assert!(!f.eval_f64(&[5.0, 0.9], 1e-9).unwrap()); // neither
    }

    #[test]
    fn parse_quantifiers_and_relations() {
        let f = parse_formula("exists x2. R(x0, x2) and S(x2, x1)", 3).unwrap();
        assert!(matches!(f, Formula::Exists(_, _)));
        assert_eq!(f.relation_names(), vec!["R".to_string(), "S".to_string()]);
        assert!(f.is_existential_positive());
    }

    #[test]
    fn parse_decimals_and_subtraction() {
        let f = parse_formula("0.5*x0 - x1 <= 1.25", 2).unwrap();
        assert!(f.eval_f64(&[2.0, 0.0], 1e-9).unwrap());
        assert!(!f.eval_f64(&[3.0, -0.5], 1e-9).unwrap());
    }

    #[test]
    fn parse_true_false_and_equality() {
        assert_eq!(parse_formula("true", 0).unwrap(), Formula::True);
        assert_eq!(parse_formula("false", 0).unwrap(), Formula::False);
        let eq = parse_formula("x0 = x1", 2).unwrap();
        assert!(eq.eval_f64(&[1.0, 1.0], 1e-9).unwrap());
        assert!(!eq.eval_f64(&[1.0, 2.0], 1e-9).unwrap());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_formula("x0 +", 1).is_err());
        assert!(parse_formula("x0 <= 1 extra", 1).is_err());
        assert!(parse_formula("x5 <= 1", 2).is_err());
        assert!(parse_formula("exists x1 x0 <= 1", 2).is_err());
        assert!(parse_formula("(x0 <= 1", 1).is_err());
        assert!(parse_formula("R(x0", 1).is_err());
    }

    #[test]
    fn roundtrip_through_relation() {
        use crate::relation::GeneralizedRelation;
        let f = parse_formula("(x0 >= 0 and x0 <= 1 and x1 >= 0 and x1 <= 1) or (x0 >= 2 and x0 <= 3 and x1 >= 0 and x1 <= 1)", 2).unwrap();
        let r = GeneralizedRelation::from_formula(2, &f).unwrap();
        assert_eq!(r.tuples().len(), 2);
        assert!(r.contains_f64(&[0.5, 0.5]));
        assert!(r.contains_f64(&[2.5, 0.5]));
        assert!(!r.contains_f64(&[1.5, 0.5]));
    }
}
