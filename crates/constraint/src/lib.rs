//! The linear constraint database model of Kanellakis, Kuper and Revesz, as
//! used by the paper *Uniform generation in spatial constraint databases and
//! applications*.
//!
//! The symbolic layer mirrors Section 2 of the paper:
//!
//! * a *generalized tuple* is a conjunction of linear constraints over the
//!   structure `Rlin = ⟨R, +, −, <, 0, 1⟩` — geometrically a convex
//!   polyhedron ([`GeneralizedTuple`]);
//! * a *generalized relation* is a finite union of generalized tuples — a
//!   quantifier-free formula in disjunctive normal form
//!   ([`GeneralizedRelation`]);
//! * queries are first-order formulas over the schema and the linear
//!   structure (`FO + LIN`), represented by [`Formula`] with relation atoms
//!   resolved against a [`Database`];
//! * quantifier elimination is Fourier–Motzkin ([`qe`]), the classical
//!   symbolic baseline whose doubly-exponential cost motivates the paper's
//!   sampling approach.
//!
//! Exact rational arithmetic (`cdb-num`) is used for every symbolic
//! manipulation; conversion to floating point happens only at the boundary to
//! the geometric/sampling layer (`to_hpolytope`).
//!
//! # Example
//!
//! ```
//! use cdb_constraint::{Atom, CompOp, Formula, GeneralizedRelation, LinTerm};
//! use cdb_num::Rational;
//!
//! // The triangle 0 <= x, 0 <= y, x + y <= 1 as a generalized relation.
//! let tri = Formula::and(vec![
//!     Formula::atom(Atom::new(LinTerm::var(2, 0), CompOp::Ge)),          // x >= 0
//!     Formula::atom(Atom::new(LinTerm::var(2, 1), CompOp::Ge)),          // y >= 0
//!     Formula::atom(Atom::new(
//!         LinTerm::var(2, 0).add(&LinTerm::var(2, 1)).sub(&LinTerm::constant(2, Rational::one())),
//!         CompOp::Le,
//!     )),                                                                // x + y - 1 <= 0
//! ]);
//! let rel = GeneralizedRelation::from_formula(2, &tri).unwrap();
//! assert_eq!(rel.tuples().len(), 1);
//! assert!(rel.contains_f64(&[0.25, 0.25]));
//! assert!(!rel.contains_f64(&[0.9, 0.9]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod atom;
pub mod canonical;
mod database;
mod formula;
mod parser;
pub mod poly;
pub mod qe;
mod relation;
mod term;
mod tuple;

pub use atom::{Atom, CompOp};
pub use canonical::{canonicalize, CanonicalKey};
pub use database::{Database, Schema};
pub use formula::Formula;
pub use parser::{parse_formula, ParseError};
pub use relation::GeneralizedRelation;
pub use term::LinTerm;
pub use tuple::GeneralizedTuple;

/// Errors produced by the symbolic layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstraintError {
    /// A formula used a relation name that is not part of the database.
    UnknownRelation(String),
    /// A relation was used with the wrong number of argument variables.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Expected arity.
        expected: usize,
        /// Arity found in the query.
        found: usize,
    },
    /// Universal quantification or some other construct outside the supported
    /// fragment was encountered where it is not allowed.
    UnsupportedConstruct(String),
    /// A variable index was out of range for the formula's arity.
    VariableOutOfRange(usize),
}

impl std::fmt::Display for ConstraintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConstraintError::UnknownRelation(name) => write!(f, "unknown relation {name}"),
            ConstraintError::ArityMismatch {
                relation,
                expected,
                found,
            } => {
                write!(
                    f,
                    "relation {relation} has arity {expected}, used with {found} arguments"
                )
            }
            ConstraintError::UnsupportedConstruct(what) => {
                write!(f, "unsupported construct: {what}")
            }
            ConstraintError::VariableOutOfRange(v) => write!(f, "variable x{v} is out of range"),
        }
    }
}

impl std::error::Error for ConstraintError {}
