//! Generalized relations: finite unions of generalized tuples (DNF).

use cdb_geometry::HPolytope;
use cdb_num::Rational;
use std::fmt;

use crate::atom::Atom;
use crate::formula::Formula;
use crate::qe;
use crate::tuple::GeneralizedTuple;
use crate::ConstraintError;

/// A *generalized relation* (Section 2 of the paper): a finitely representable
/// set `S ⊆ R^d`, stored in disjunctive normal form as a finite union of
/// generalized tuples. Each tuple is a convex polyhedron, so the relation is
/// a finite union of convex sets.
#[derive(Clone, Debug, PartialEq)]
pub struct GeneralizedRelation {
    arity: usize,
    tuples: Vec<GeneralizedTuple>,
}

impl GeneralizedRelation {
    /// The empty relation of the given arity.
    pub fn empty(arity: usize) -> Self {
        GeneralizedRelation {
            arity,
            tuples: Vec::new(),
        }
    }

    /// Builds a relation from explicit tuples.
    pub fn from_tuples(arity: usize, tuples: Vec<GeneralizedTuple>) -> Self {
        for t in &tuples {
            assert_eq!(t.arity(), arity, "tuple arity mismatch");
        }
        GeneralizedRelation { arity, tuples }
    }

    /// A relation holding a single tuple.
    pub fn from_tuple(tuple: GeneralizedTuple) -> Self {
        GeneralizedRelation {
            arity: tuple.arity(),
            tuples: vec![tuple],
        }
    }

    /// A relation describing an axis-aligned box.
    pub fn from_box_f64(lo: &[f64], hi: &[f64]) -> Self {
        GeneralizedRelation::from_tuple(GeneralizedTuple::from_box_f64(lo, hi))
    }

    /// Builds a relation from a relation-free formula: quantifiers are
    /// eliminated, the result is put in DNF and tuples with an empty closure
    /// are dropped.
    pub fn from_formula(arity: usize, formula: &Formula) -> Result<Self, ConstraintError> {
        if !formula.is_relation_free() {
            return Err(ConstraintError::UnsupportedConstruct(
                "from_formula expects a relation-free formula; resolve relation atoms through a Database first".into(),
            ));
        }
        let qf = qe::eliminate_quantifiers(formula)?;
        let ambient = qf.min_arity().max(arity);
        let dnf = qf.to_dnf()?;
        let mut tuples = Vec::with_capacity(dnf.len());
        for conj in dnf {
            // Pad every atom to the ambient arity, then restrict to the
            // output arity (all quantified variables have been eliminated).
            let mut atoms = Vec::with_capacity(conj.len());
            let mut ok = true;
            for a in conj {
                let mapping: Vec<usize> = (0..a.arity()).collect();
                let padded = a.remap(ambient, &mapping);
                match padded.restrict(arity) {
                    Some(restricted) => atoms.push(restricted),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                return Err(ConstraintError::VariableOutOfRange(arity));
            }
            let tuple = GeneralizedTuple::new(arity, atoms);
            if !tuple.closure_is_empty() {
                tuples.push(tuple);
            }
        }
        Ok(GeneralizedRelation { arity, tuples })
    }

    /// Number of variables (the dimension `d` of the relation).
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The tuples (disjuncts) of the relation.
    pub fn tuples(&self) -> &[GeneralizedTuple] {
        &self.tuples
    }

    /// Returns `true` when the relation has no tuples (syntactically empty).
    pub fn is_syntactically_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Description size: sum of the tuples' description sizes, the paper's
    /// complexity parameter.
    pub fn description_size(&self) -> usize {
        self.tuples.iter().map(|t| t.description_size()).sum()
    }

    /// Exact membership.
    pub fn contains(&self, point: &[Rational]) -> bool {
        self.tuples.iter().any(|t| t.satisfied(point))
    }

    /// Floating-point membership (tolerance `1e-9`).
    pub fn contains_f64(&self, point: &[f64]) -> bool {
        self.tuples.iter().any(|t| t.satisfied_f64(point, 1e-9))
    }

    /// Index of the first tuple containing the point — the `j(x)` of the
    /// union generator (Algorithm 1 in the paper), used to make sure every
    /// point of an overlapping union is attributed to exactly one tuple.
    pub fn first_containing_tuple(&self, point: &[f64], tol: f64) -> Option<usize> {
        self.tuples.iter().position(|t| t.satisfied_f64(point, tol))
    }

    /// The closures of the tuples as H-polytopes, in order.
    pub fn to_polytopes(&self) -> Vec<HPolytope> {
        self.tuples.iter().map(|t| t.to_hpolytope()).collect()
    }

    /// The defining formula (a disjunction of conjunctions).
    pub fn to_formula(&self) -> Formula {
        Formula::or(
            self.tuples
                .iter()
                .map(|t| Formula::and(t.atoms().iter().cloned().map(Formula::Atom).collect()))
                .collect(),
        )
    }

    /// Union with another relation of the same arity.
    pub fn union(&self, other: &GeneralizedRelation) -> GeneralizedRelation {
        assert_eq!(self.arity, other.arity, "relation arity mismatch");
        let mut tuples = self.tuples.clone();
        tuples.extend(other.tuples.iter().cloned());
        GeneralizedRelation {
            arity: self.arity,
            tuples,
        }
    }

    /// Intersection with another relation (pairwise conjunction of tuples;
    /// empty combinations are dropped).
    pub fn intersection(&self, other: &GeneralizedRelation) -> GeneralizedRelation {
        assert_eq!(self.arity, other.arity, "relation arity mismatch");
        let mut tuples = Vec::new();
        for a in &self.tuples {
            for b in &other.tuples {
                let c = a.conjoin(b);
                if !c.closure_is_empty() {
                    tuples.push(c);
                }
            }
        }
        GeneralizedRelation {
            arity: self.arity,
            tuples,
        }
    }

    /// Set difference `self − other`, computed symbolically as
    /// `self ∧ ¬other` and renormalized to DNF.
    pub fn difference(
        &self,
        other: &GeneralizedRelation,
    ) -> Result<GeneralizedRelation, ConstraintError> {
        assert_eq!(self.arity, other.arity, "relation arity mismatch");
        let formula = Formula::and(vec![self.to_formula(), Formula::not(other.to_formula())]);
        GeneralizedRelation::from_formula(self.arity, &formula)
    }

    /// Selection: conjoins an additional atom to every tuple.
    pub fn select(&self, atom: &Atom) -> GeneralizedRelation {
        assert_eq!(atom.arity(), self.arity, "selection atom arity mismatch");
        let tuples = self
            .tuples
            .iter()
            .map(|t| {
                let mut t2 = t.clone();
                t2.push(atom.clone());
                t2
            })
            .filter(|t| !t.closure_is_empty())
            .collect();
        GeneralizedRelation {
            arity: self.arity,
            tuples,
        }
    }

    /// Projection onto the listed coordinates (symbolic Fourier–Motzkin per
    /// tuple) — the classical baseline the paper's Algorithm 2 replaces.
    pub fn project(&self, keep: &[usize]) -> GeneralizedRelation {
        let tuples: Vec<GeneralizedTuple> = self
            .tuples
            .iter()
            .map(|t| qe::project_tuple(t, keep))
            .filter(|t| !t.closure_is_empty())
            .collect();
        GeneralizedRelation {
            arity: keep.len(),
            tuples,
        }
    }

    /// Cartesian product with another relation (variables of `other` are
    /// shifted after `self`'s).
    pub fn product(&self, other: &GeneralizedRelation) -> GeneralizedRelation {
        let mut tuples = Vec::new();
        for a in &self.tuples {
            for b in &other.tuples {
                tuples.push(a.product(b));
            }
        }
        GeneralizedRelation {
            arity: self.arity + other.arity,
            tuples,
        }
    }

    /// Drops tuples whose closure is empty or lower-dimensional (no
    /// Chebyshev ball with positive radius); these contribute nothing to
    /// volumes or sampling.
    pub fn prune_degenerate(&self) -> GeneralizedRelation {
        let tuples = self
            .tuples
            .iter()
            .filter(|t| {
                t.to_hpolytope()
                    .chebyshev_ball()
                    .map(|(_, r)| r > 1e-12)
                    .unwrap_or(false)
            })
            .cloned()
            .collect();
        GeneralizedRelation {
            arity: self.arity,
            tuples,
        }
    }
}

impl fmt::Display for GeneralizedRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.tuples.is_empty() {
            return write!(f, "false");
        }
        for (i, t) in self.tuples.iter().enumerate() {
            if i > 0 {
                write!(f, " or ")?;
            }
            write!(f, "[{t}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::CompOp;
    use crate::term::LinTerm;

    fn unit_square() -> GeneralizedRelation {
        GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[1.0, 1.0])
    }

    fn shifted_square() -> GeneralizedRelation {
        GeneralizedRelation::from_box_f64(&[0.5, 0.5], &[1.5, 1.5])
    }

    #[test]
    fn membership_and_union() {
        let u = unit_square().union(&shifted_square());
        assert_eq!(u.tuples().len(), 2);
        assert!(u.contains_f64(&[0.25, 0.25]));
        assert!(u.contains_f64(&[1.25, 1.25]));
        assert!(!u.contains_f64(&[2.0, 2.0]));
        assert_eq!(u.first_containing_tuple(&[0.75, 0.75], 1e-9), Some(0));
        assert_eq!(u.first_containing_tuple(&[1.25, 1.25], 1e-9), Some(1));
        assert_eq!(u.first_containing_tuple(&[9.0, 9.0], 1e-9), None);
    }

    #[test]
    fn intersection_keeps_only_overlap() {
        let i = unit_square().intersection(&shifted_square());
        assert_eq!(i.tuples().len(), 1);
        assert!(i.contains_f64(&[0.75, 0.75]));
        assert!(!i.contains_f64(&[0.25, 0.25]));
        // Disjoint intersection is empty.
        let far = GeneralizedRelation::from_box_f64(&[10.0, 10.0], &[11.0, 11.0]);
        assert!(unit_square().intersection(&far).is_syntactically_empty());
    }

    #[test]
    fn difference_carves_out_the_overlap() {
        let d = unit_square().difference(&shifted_square()).unwrap();
        assert!(d.contains_f64(&[0.25, 0.25]));
        assert!(!d.contains_f64(&[0.75, 0.75]));
        assert!(!d.contains_f64(&[1.25, 1.25]));
        // Difference with a disjoint set is the original set.
        let far = GeneralizedRelation::from_box_f64(&[5.0, 5.0], &[6.0, 6.0]);
        let same = unit_square().difference(&far).unwrap();
        for p in [[0.1, 0.9], [0.5, 0.5], [1.5, 0.5]] {
            assert_eq!(
                same.contains_f64(&p),
                unit_square().contains_f64(&p),
                "{p:?}"
            );
        }
    }

    #[test]
    fn projection_matches_fourier_motzkin() {
        // Project the square [0,1]x[2,3] onto the second coordinate.
        let r = GeneralizedRelation::from_box_f64(&[0.0, 2.0], &[1.0, 3.0]);
        let p = r.project(&[1]);
        assert_eq!(p.arity(), 1);
        assert!(p.contains_f64(&[2.5]));
        assert!(!p.contains_f64(&[1.5]));
        assert!(!p.contains_f64(&[3.5]));
    }

    #[test]
    fn selection_and_product() {
        let r = unit_square();
        // Select x <= 1/2.
        let atom = Atom::new(
            LinTerm::var(2, 0).sub(&LinTerm::constant(2, Rational::from_ratio(1, 2))),
            CompOp::Le,
        );
        let s = r.select(&atom);
        assert!(s.contains_f64(&[0.25, 0.9]));
        assert!(!s.contains_f64(&[0.75, 0.9]));
        // Product with an interval gives a 3-dimensional box.
        let interval = GeneralizedRelation::from_box_f64(&[10.0], &[11.0]);
        let prod = r.product(&interval);
        assert_eq!(prod.arity(), 3);
        assert!(prod.contains_f64(&[0.5, 0.5, 10.5]));
        assert!(!prod.contains_f64(&[0.5, 0.5, 9.5]));
    }

    #[test]
    fn from_formula_builds_dnf_and_drops_empty_disjuncts() {
        // (0 <= x <= 1) or (x >= 5 and x <= 4)  — the second disjunct is empty.
        let f = Formula::or(vec![
            Formula::and(vec![
                Formula::Atom(Atom::le_from_ints(&[-1], 0)),
                Formula::Atom(Atom::le_from_ints(&[1], -1)),
            ]),
            Formula::and(vec![
                Formula::Atom(Atom::new(LinTerm::from_ints(&[1], -5), CompOp::Ge)),
                Formula::Atom(Atom::le_from_ints(&[1], -4)),
            ]),
        ]);
        let r = GeneralizedRelation::from_formula(1, &f).unwrap();
        assert_eq!(r.tuples().len(), 1);
        assert!(r.contains_f64(&[0.5]));
        assert!(!r.contains_f64(&[4.5]));
    }

    #[test]
    fn from_formula_with_quantifier() {
        // exists y. (x <= y and y <= 1 and x >= 0)  <=>  0 <= x <= 1.
        let f = Formula::exists(
            vec![1],
            Formula::and(vec![
                Formula::Atom(Atom::le_from_ints(&[1, -1], 0)),
                Formula::Atom(Atom::le_from_ints(&[0, 1], -1)),
                Formula::Atom(Atom::new(LinTerm::from_ints(&[1, 0], 0), CompOp::Ge)),
            ]),
        );
        let r = GeneralizedRelation::from_formula(1, &f).unwrap();
        assert!(r.contains_f64(&[0.0]));
        assert!(r.contains_f64(&[1.0]));
        assert!(!r.contains_f64(&[1.5]));
        assert!(!r.contains_f64(&[-0.5]));
    }

    #[test]
    fn from_formula_rejects_relation_atoms() {
        let f = Formula::rel("R", vec![0]);
        assert!(GeneralizedRelation::from_formula(1, &f).is_err());
    }

    #[test]
    fn formula_roundtrip_preserves_membership() {
        let u = unit_square().union(&shifted_square());
        let back = GeneralizedRelation::from_formula(2, &u.to_formula()).unwrap();
        for p in [[0.1, 0.1], [0.75, 0.75], [1.4, 1.4], [2.0, 0.0]] {
            assert_eq!(u.contains_f64(&p), back.contains_f64(&p), "{p:?}");
        }
    }

    #[test]
    fn prune_degenerate_removes_segments() {
        // A box plus a degenerate "segment" tuple (x = 5, 0 <= y <= 1).
        let mut segment = GeneralizedTuple::from_box_f64(&[5.0, 0.0], &[5.0, 1.0]);
        segment.push(Atom::new(LinTerm::from_ints(&[1, 0], -5), CompOp::Eq));
        let r = GeneralizedRelation::from_tuples(
            2,
            vec![
                GeneralizedTuple::from_box_f64(&[0.0, 0.0], &[1.0, 1.0]),
                segment,
            ],
        );
        assert_eq!(r.tuples().len(), 2);
        assert_eq!(r.prune_degenerate().tuples().len(), 1);
    }

    #[test]
    fn exact_membership_at_boundaries() {
        let r = unit_square();
        let one = Rational::from_int(1);
        let zero = Rational::zero();
        assert!(r.contains(&[one.clone(), zero.clone()]));
        assert!(!r.contains(&[Rational::from_ratio(11, 10), zero]));
    }
}
