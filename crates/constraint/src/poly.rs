//! Polynomial constraints (the FO+POLY extension of Section 5).
//!
//! The paper's concluding section observes that the Dyer–Frieze–Kannan
//! generator only needs a *membership oracle* for a convex body, so convex
//! sets defined by polynomial constraints are observable through exactly the
//! same machinery. This module provides that oracle layer: multivariate
//! polynomial constraints evaluated in floating point, and convex bodies
//! assembled from them. Convexity itself is the caller's responsibility (as
//! in the paper, which notes that a conjunction of polynomial constraints
//! need not be convex).

use std::fmt;

/// A monomial `coeff · Π x_i^{e_i}`.
#[derive(Clone, Debug, PartialEq)]
pub struct Monomial {
    /// Coefficient.
    pub coeff: f64,
    /// One exponent per variable.
    pub exponents: Vec<u32>,
}

impl Monomial {
    /// Creates a monomial.
    pub fn new(coeff: f64, exponents: Vec<u32>) -> Self {
        Monomial { coeff, exponents }
    }

    /// Evaluates the monomial at a point.
    pub fn eval(&self, point: &[f64]) -> f64 {
        assert_eq!(point.len(), self.exponents.len(), "arity mismatch");
        let mut v = self.coeff;
        for (x, &e) in point.iter().zip(&self.exponents) {
            if e > 0 {
                v *= x.powi(e as i32);
            }
        }
        v
    }

    /// Total degree of the monomial.
    pub fn degree(&self) -> u32 {
        self.exponents.iter().sum()
    }
}

/// A polynomial constraint `Σ monomials ≤ 0`.
#[derive(Clone, Debug, PartialEq)]
pub struct PolyConstraint {
    monomials: Vec<Monomial>,
    arity: usize,
}

impl PolyConstraint {
    /// Creates the constraint `Σ monomials ≤ 0`.
    pub fn new(arity: usize, monomials: Vec<Monomial>) -> Self {
        for m in &monomials {
            assert_eq!(m.exponents.len(), arity, "monomial arity mismatch");
        }
        PolyConstraint { monomials, arity }
    }

    /// The constraint `‖x − c‖² ≤ r²`, i.e. a Euclidean ball.
    pub fn ball(center: &[f64], r: f64) -> Self {
        let d = center.len();
        let mut monomials = Vec::new();
        for i in 0..d {
            let mut sq = vec![0u32; d];
            sq[i] = 2;
            monomials.push(Monomial::new(1.0, sq));
            let mut lin = vec![0u32; d];
            lin[i] = 1;
            monomials.push(Monomial::new(-2.0 * center[i], lin));
        }
        let constant: f64 = center.iter().map(|c| c * c).sum::<f64>() - r * r;
        monomials.push(Monomial::new(constant, vec![0; d]));
        PolyConstraint {
            monomials,
            arity: d,
        }
    }

    /// The axis-aligned ellipsoid constraint `Σ ((x_i − c_i)/a_i)² ≤ 1`.
    pub fn axis_ellipsoid(center: &[f64], semi_axes: &[f64]) -> Self {
        assert_eq!(center.len(), semi_axes.len());
        let d = center.len();
        let mut monomials = Vec::new();
        for i in 0..d {
            let w = 1.0 / (semi_axes[i] * semi_axes[i]);
            let mut sq = vec![0u32; d];
            sq[i] = 2;
            monomials.push(Monomial::new(w, sq));
            let mut lin = vec![0u32; d];
            lin[i] = 1;
            monomials.push(Monomial::new(-2.0 * center[i] * w, lin));
        }
        let constant: f64 = center
            .iter()
            .zip(semi_axes)
            .map(|(c, a)| (c * c) / (a * a))
            .sum::<f64>()
            - 1.0;
        monomials.push(Monomial::new(constant, vec![0; d]));
        PolyConstraint {
            monomials,
            arity: d,
        }
    }

    /// Number of variables.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The monomials of the left-hand side.
    pub fn monomials(&self) -> &[Monomial] {
        &self.monomials
    }

    /// Total degree of the constraint.
    pub fn degree(&self) -> u32 {
        self.monomials.iter().map(|m| m.degree()).max().unwrap_or(0)
    }

    /// Evaluates the left-hand side at a point.
    pub fn eval(&self, point: &[f64]) -> f64 {
        self.monomials.iter().map(|m| m.eval(point)).sum()
    }

    /// Membership test with tolerance.
    pub fn satisfied(&self, point: &[f64], tol: f64) -> bool {
        self.eval(point) <= tol
    }

    /// Restriction of the left-hand side to the line `point + t·dir`, as the
    /// coefficients `(a, b, c)` of `a·t² + b·t + c`.
    ///
    /// Only available when the constraint has total degree at most 2 (balls,
    /// ellipsoids, linear constraints and their products of two variables);
    /// returns `None` for higher degrees, telling the caller to fall back to
    /// bisection against the membership oracle. This is what gives `PolyBody`
    /// oracles closed-form chords for hit-and-run.
    pub fn line_quadratic(&self, point: &[f64], dir: &[f64]) -> Option<(f64, f64, f64)> {
        assert_eq!(point.len(), self.arity, "point arity mismatch");
        assert_eq!(dir.len(), self.arity, "direction arity mismatch");
        let (mut a, mut b, mut c) = (0.0f64, 0.0f64, 0.0f64);
        for m in &self.monomials {
            match m.degree() {
                0 => c += m.coeff,
                1 => {
                    let i = m
                        .exponents
                        .iter()
                        .position(|&e| e == 1)
                        .expect("degree-1 monomial has one linear variable");
                    c += m.coeff * point[i];
                    b += m.coeff * dir[i];
                }
                2 => {
                    let mut vars = m.exponents.iter().enumerate().filter(|(_, &e)| e > 0);
                    let (i, &ei) = vars.next().expect("degree-2 monomial has variables");
                    if ei == 2 {
                        // coeff · x_i²
                        a += m.coeff * dir[i] * dir[i];
                        b += 2.0 * m.coeff * point[i] * dir[i];
                        c += m.coeff * point[i] * point[i];
                    } else {
                        // coeff · x_i · x_j
                        let (j, _) = vars.next().expect("mixed monomial has two variables");
                        a += m.coeff * dir[i] * dir[j];
                        b += m.coeff * (point[i] * dir[j] + point[j] * dir[i]);
                        c += m.coeff * point[i] * point[j];
                    }
                }
                _ => return None,
            }
        }
        Some((a, b, c))
    }
}

impl fmt::Display for PolyConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, m) in self.monomials.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{}", m.coeff)?;
            for (j, &e) in m.exponents.iter().enumerate() {
                if e == 1 {
                    write!(f, "*x{j}")?;
                } else if e > 1 {
                    write!(f, "*x{j}^{e}")?;
                }
            }
        }
        write!(f, " <= 0")
    }
}

/// A body defined by a conjunction of polynomial constraints, used as a
/// membership oracle by the samplers. Convexity is asserted by the caller
/// (`assume_convex`), mirroring the paper's requirement that the oracle
/// describes a convex set.
#[derive(Clone, Debug)]
pub struct PolyBody {
    arity: usize,
    constraints: Vec<PolyConstraint>,
    assume_convex: bool,
}

impl PolyBody {
    /// Creates a body from constraints; `assume_convex` records the caller's
    /// promise that the intersection is convex.
    pub fn new(arity: usize, constraints: Vec<PolyConstraint>, assume_convex: bool) -> Self {
        for c in &constraints {
            assert_eq!(c.arity(), arity, "constraint arity mismatch");
        }
        PolyBody {
            arity,
            constraints,
            assume_convex,
        }
    }

    /// A Euclidean ball.
    pub fn ball(center: &[f64], r: f64) -> Self {
        PolyBody::new(center.len(), vec![PolyConstraint::ball(center, r)], true)
    }

    /// An axis-aligned ellipsoid.
    pub fn ellipsoid(center: &[f64], semi_axes: &[f64]) -> Self {
        PolyBody::new(
            center.len(),
            vec![PolyConstraint::axis_ellipsoid(center, semi_axes)],
            true,
        )
    }

    /// Number of variables.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The constraints.
    pub fn constraints(&self) -> &[PolyConstraint] {
        &self.constraints
    }

    /// Whether the caller asserted convexity.
    pub fn is_assumed_convex(&self) -> bool {
        self.assume_convex
    }

    /// Membership test (the oracle handed to the samplers).
    pub fn contains(&self, point: &[f64], tol: f64) -> bool {
        self.constraints.iter().all(|c| c.satisfied(point, tol))
    }

    /// Intersection with another body over the same variables.
    pub fn intersect(&self, other: &PolyBody) -> PolyBody {
        assert_eq!(self.arity, other.arity);
        let mut constraints = self.constraints.clone();
        constraints.extend(other.constraints.iter().cloned());
        PolyBody {
            arity: self.arity,
            constraints,
            assume_convex: self.assume_convex && other.assume_convex,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ball_membership() {
        let b = PolyBody::ball(&[0.0, 0.0], 1.0);
        assert!(b.contains(&[0.5, 0.5], 0.0));
        assert!(!b.contains(&[0.9, 0.9], 0.0));
        assert!(b.contains(&[1.0, 0.0], 1e-9));
        let shifted = PolyBody::ball(&[3.0, -1.0], 0.5);
        assert!(shifted.contains(&[3.2, -1.1], 0.0));
        assert!(!shifted.contains(&[0.0, 0.0], 0.0));
    }

    #[test]
    fn ellipsoid_membership() {
        let e = PolyBody::ellipsoid(&[0.0, 0.0], &[2.0, 0.5]);
        assert!(e.contains(&[1.9, 0.0], 0.0));
        assert!(!e.contains(&[0.0, 0.6], 0.0));
        assert!(e.is_assumed_convex());
        assert_eq!(e.arity(), 2);
    }

    #[test]
    fn intersection_of_balls_is_a_lens() {
        let a = PolyBody::ball(&[0.0, 0.0], 1.0);
        let b = PolyBody::ball(&[1.0, 0.0], 1.0);
        let lens = a.intersect(&b);
        assert!(lens.contains(&[0.5, 0.0], 0.0));
        assert!(!lens.contains(&[-0.5, 0.0], 0.0));
        assert!(!lens.contains(&[1.5, 0.0], 0.0));
        assert!(lens.is_assumed_convex());
        assert_eq!(lens.constraints().len(), 2);
    }

    #[test]
    fn constraint_evaluation_and_degree() {
        // x^2 + y^2 - 1 <= 0.
        let c = PolyConstraint::ball(&[0.0, 0.0], 1.0);
        assert!((c.eval(&[1.0, 0.0]) - 0.0).abs() < 1e-12);
        assert!(c.eval(&[2.0, 0.0]) > 0.0);
        assert_eq!(c.degree(), 2);
        assert_eq!(c.arity(), 2);
        let display = c.to_string();
        assert!(display.contains("<= 0"));
    }

    #[test]
    fn line_quadratic_matches_direct_evaluation() {
        // Mixed-degree constraint: x0² + 2·x0·x1 − 3·x1 + 1 ≤ 0.
        let c = PolyConstraint::new(
            2,
            vec![
                Monomial::new(1.0, vec![2, 0]),
                Monomial::new(2.0, vec![1, 1]),
                Monomial::new(-3.0, vec![0, 1]),
                Monomial::new(1.0, vec![0, 0]),
            ],
        );
        let p = [0.3, -0.7];
        let d = [1.5, 0.4];
        let (a, b, cc) = c.line_quadratic(&p, &d).unwrap();
        for t in [-2.0, -0.5, 0.0, 0.7, 3.1] {
            let x = [p[0] + t * d[0], p[1] + t * d[1]];
            let direct = c.eval(&x);
            let quad = a * t * t + b * t + cc;
            assert!((direct - quad).abs() < 1e-9, "t={t}: {direct} vs {quad}");
        }
        // A cubic constraint has no quadratic restriction.
        let cubic = PolyConstraint::new(1, vec![Monomial::new(1.0, vec![3])]);
        assert!(cubic.line_quadratic(&[0.0], &[1.0]).is_none());
    }

    #[test]
    fn monomial_evaluation() {
        // 3 x0^2 x1 at (2, 5) = 3*4*5 = 60.
        let m = Monomial::new(3.0, vec![2, 1]);
        assert!((m.eval(&[2.0, 5.0]) - 60.0).abs() < 1e-12);
        assert_eq!(m.degree(), 3);
    }
}
