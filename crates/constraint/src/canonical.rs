//! Canonicalization of `FO + LIN` formulas: the cache-key pass of the
//! prepared-relation store.
//!
//! Two stored relations with syntactically different but equivalent
//! descriptions — atoms listed in a different order, coefficients scaled by
//! a positive rational, `≥` written instead of `≤`, bound variables named
//! differently — must map to the same prepared generator body. This module
//! computes a canonical representative of a formula's syntactic equivalence
//! class and renders it into a stable, hashable [`CanonicalKey`]:
//!
//! * **atoms** are put through [`Atom::canonicalized`](crate::atom::Atom::canonicalized):
//!   operators reduced to
//!   `{<, ≤, =}`, denominators cleared, coefficients divided by their gcd,
//!   and equality terms sign-oriented (`t = 0` ≡ `−t = 0`);
//! * **conjunctions and disjunctions** are flattened, unit-pruned
//!   (`True`/`False`), deduplicated and sorted by their rendered form, so
//!   atom order is invisible;
//! * **bound variables** of a quantifier-free `Exists` body are renamed onto
//!   a dense canonical range above the free variables; blocks of up to
//!   [`MAX_ORBIT_VARS`] bound variables are orbit-minimized over every
//!   assignment order, making *arbitrary* renamings (not just
//!   order-preserving ones) invisible;
//! * **trailing zero coefficients** are trimmed from every atom's rendering,
//!   so padding a formula into a larger ambient arity does not change its
//!   key — the ambient dimension is recorded once, in the key prefix.
//!
//! The rendered key is the store's map key; [`CanonicalKey::hash64`] is the
//! stable 64-bit digest the store uses for sharding and the prepared-body
//! setup streams are derived from (preparation randomness must be a pure
//! function of the key for cache hits to be bitwise invisible).

use std::collections::BTreeSet;
use std::fmt;

use crate::formula::Formula;
use crate::relation::GeneralizedRelation;

/// Bound-variable blocks up to this size are canonicalized by trying every
/// assignment order and keeping the lexicographically smallest rendering
/// (`5! = 120` candidates at most). Larger blocks fall back to renaming in
/// increasing index order, which still covers order-preserving renamings.
pub const MAX_ORBIT_VARS: usize = 5;

/// A canonicalized formula rendered into a stable string form, usable as a
/// hash-map key. Construct through [`CanonicalKey::of_formula`] or
/// [`CanonicalKey::of_relation`].
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CanonicalKey(String);

impl CanonicalKey {
    /// Canonicalizes `formula` in the given ambient arity and renders the
    /// key. Formulas equal up to atom order, positive coefficient scaling,
    /// operator orientation and bound-variable renaming share a key; the
    /// ambient arity is part of the key because the same constraint text
    /// describes different sets in different dimensions.
    pub fn of_formula(formula: &Formula, arity: usize) -> CanonicalKey {
        let canonical = canonicalize(formula);
        CanonicalKey(format!("d{arity}|{}", render(&canonical)))
    }

    /// The key of a stored relation: its defining DNF formula in its own
    /// arity. Relations with identical content — even under different names
    /// or with reordered tuples — share a key.
    pub fn of_relation(relation: &GeneralizedRelation) -> CanonicalKey {
        CanonicalKey::of_formula(&relation.to_formula(), relation.arity())
    }

    /// The rendered canonical form.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Stable 64-bit digest (FNV-1a over the rendering): used for store
    /// sharding and for deriving the key's preparation seed stream.
    pub fn hash64(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in self.0.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

impl fmt::Display for CanonicalKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The canonical representative of the formula's syntactic equivalence
/// class (see the module docs for the exact invariances).
pub fn canonicalize(formula: &Formula) -> Formula {
    match formula {
        Formula::True => Formula::True,
        Formula::False => Formula::False,
        Formula::Atom(a) => Formula::Atom(a.canonicalized()),
        Formula::Rel(name, vars) => Formula::Rel(name.clone(), vars.clone()),
        Formula::And(parts) => {
            let mut flat = Vec::new();
            for p in parts {
                match canonicalize(p) {
                    Formula::True => {}
                    Formula::False => return Formula::False,
                    Formula::And(inner) => flat.extend(inner),
                    other => flat.push(other),
                }
            }
            sorted_connective(flat, true)
        }
        Formula::Or(parts) => {
            let mut flat = Vec::new();
            for p in parts {
                match canonicalize(p) {
                    Formula::False => {}
                    Formula::True => return Formula::True,
                    Formula::Or(inner) => flat.extend(inner),
                    other => flat.push(other),
                }
            }
            sorted_connective(flat, false)
        }
        Formula::Not(inner) => match canonicalize(inner) {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(g) => *g,
            g => Formula::Not(Box::new(g)),
        },
        Formula::Exists(vars, body) => canonicalize_exists(vars, body),
    }
}

/// Sorts canonical children by their rendering and deduplicates.
fn sorted_connective(mut parts: Vec<Formula>, conjunction: bool) -> Formula {
    let mut rendered: Vec<(String, Formula)> = parts.drain(..).map(|f| (render(&f), f)).collect();
    rendered.sort_by(|a, b| a.0.cmp(&b.0));
    rendered.dedup_by(|a, b| a.0 == b.0);
    let children = rendered.into_iter().map(|(_, f)| f).collect();
    if conjunction {
        Formula::and(children)
    } else {
        Formula::or(children)
    }
}

fn canonicalize_exists(vars: &[usize], body: &Formula) -> Formula {
    let mut bound: BTreeSet<usize> = vars.iter().copied().collect();
    let mut inner = canonicalize(body);
    // Adjacent quantifier blocks merge: ∃x.∃y.φ ≡ ∃x,y.φ (shadowed indices
    // deduplicate harmlessly — the inner binding was the live one).
    while let Formula::Exists(inner_vars, inner_body) = inner {
        bound.extend(inner_vars);
        inner = *inner_body;
    }
    match &inner {
        Formula::True => return Formula::True,
        Formula::False => return Formula::False,
        _ => {}
    }
    if !inner.is_quantifier_free() {
        // Non-adjacent nesting: keep the (sorted) block as-is; the bodies
        // were canonicalized recursively.
        let vars: Vec<usize> = bound.into_iter().collect();
        return Formula::exists(vars, inner);
    }
    // Drop bound variables the body never mentions: ∃x.φ ≡ φ over R.
    let used = used_variables(&inner);
    let live: Vec<usize> = bound.into_iter().filter(|v| used.contains(v)).collect();
    if live.is_empty() {
        return inner;
    }
    // Free floor: one past the largest mentioned index that stays free.
    let floor = used
        .iter()
        .filter(|v| !live.contains(v))
        .max()
        .map_or(0, |m| m + 1);
    let targets: Vec<usize> = (0..live.len()).map(|i| floor + i).collect();
    if live.len() <= MAX_ORBIT_VARS {
        // Orbit minimization: try every assignment of bound variables onto
        // the canonical targets and keep the smallest rendering, so any
        // bijective renaming of the block is invisible.
        let mut best: Option<(String, Formula)> = None;
        let mut order: Vec<usize> = (0..live.len()).collect();
        permutations(&mut order, 0, &mut |perm| {
            let mut mapping = vec![0usize; mention_ceiling(&inner)];
            for (i, m) in mapping.iter_mut().enumerate() {
                *m = if i < floor { i } else { 0 };
            }
            for (slot, &which) in perm.iter().enumerate() {
                mapping[live[which]] = targets[slot];
            }
            let remapped = canonicalize(&remap_free(&inner, floor + live.len(), &mapping));
            let candidate = Formula::exists(targets.clone(), remapped);
            let rendering = render(&candidate);
            if best.as_ref().is_none_or(|(r, _)| rendering < *r) {
                best = Some((rendering, candidate));
            }
        });
        best.expect("at least one permutation").1
    } else {
        let mut mapping = vec![0usize; mention_ceiling(&inner)];
        for (i, m) in mapping.iter_mut().enumerate() {
            *m = if i < floor { i } else { 0 };
        }
        for (slot, &v) in live.iter().enumerate() {
            mapping[v] = targets[slot];
        }
        let remapped = canonicalize(&remap_free(&inner, floor + live.len(), &mapping));
        Formula::exists(targets, remapped)
    }
}

/// Indices mentioned by the quantifier-free formula: non-zero coefficients
/// of linear atoms plus every relation-atom argument.
fn used_variables(f: &Formula) -> BTreeSet<usize> {
    let mut used = BTreeSet::new();
    collect_used(f, &mut used);
    used
}

fn collect_used(f: &Formula, used: &mut BTreeSet<usize>) {
    match f {
        Formula::True | Formula::False => {}
        Formula::Atom(a) => {
            for (i, c) in a.term().coeffs().iter().enumerate() {
                if !c.is_zero() {
                    used.insert(i);
                }
            }
        }
        Formula::Rel(_, vars) => used.extend(vars.iter().copied()),
        Formula::And(fs) | Formula::Or(fs) => fs.iter().for_each(|g| collect_used(g, used)),
        Formula::Not(g) => collect_used(g, used),
        Formula::Exists(vars, g) => {
            used.extend(vars.iter().copied());
            collect_used(g, used);
        }
    }
}

/// One past the largest index any atom of the quantifier-free formula can
/// address — the length the remap mapping must cover.
fn mention_ceiling(f: &Formula) -> usize {
    match f {
        Formula::True | Formula::False => 0,
        Formula::Atom(a) => a.arity(),
        Formula::Rel(_, vars) => vars.iter().map(|v| v + 1).max().unwrap_or(0),
        Formula::And(fs) | Formula::Or(fs) => fs.iter().map(mention_ceiling).max().unwrap_or(0),
        Formula::Not(g) => mention_ceiling(g),
        Formula::Exists(vars, g) => {
            mention_ceiling(g).max(vars.iter().map(|v| v + 1).max().unwrap_or(0))
        }
    }
}

/// Applies a variable mapping to a quantifier-free formula. `mapping` must
/// cover every mentioned index; unmentioned indices may map anywhere (their
/// coefficients are zero).
fn remap_free(f: &Formula, new_arity: usize, mapping: &[usize]) -> Formula {
    match f {
        Formula::True => Formula::True,
        Formula::False => Formula::False,
        Formula::Atom(a) => Formula::Atom(a.remap(new_arity, &mapping[..a.arity()])),
        Formula::Rel(name, vars) => {
            Formula::Rel(name.clone(), vars.iter().map(|&v| mapping[v]).collect())
        }
        Formula::And(fs) => Formula::And(
            fs.iter()
                .map(|g| remap_free(g, new_arity, mapping))
                .collect(),
        ),
        Formula::Or(fs) => Formula::Or(
            fs.iter()
                .map(|g| remap_free(g, new_arity, mapping))
                .collect(),
        ),
        Formula::Not(g) => Formula::Not(Box::new(remap_free(g, new_arity, mapping))),
        Formula::Exists(..) => unreachable!("remap_free is called on quantifier-free bodies"),
    }
}

/// Calls `visit` with every permutation of `order[k..]` (Heap-style
/// recursion; the caller passes `k = 0`).
fn permutations(order: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k + 1 >= order.len() {
        visit(order);
        return;
    }
    for i in k..order.len() {
        order.swap(k, i);
        permutations(order, k + 1, visit);
        order.swap(k, i);
    }
}

/// Deterministic rendering of a canonical formula. Atoms are printed with
/// trailing zero coefficients trimmed, so arity padding is invisible (the
/// ambient dimension lives in the key prefix instead).
fn render(f: &Formula) -> String {
    let mut out = String::new();
    render_into(f, &mut out);
    out
}

fn render_into(f: &Formula, out: &mut String) {
    use std::fmt::Write;
    match f {
        Formula::True => out.push('T'),
        Formula::False => out.push('F'),
        Formula::Atom(a) => {
            let op = match a.op() {
                crate::atom::CompOp::Lt => '<',
                crate::atom::CompOp::Le => 'l',
                crate::atom::CompOp::Eq => '=',
                // canonicalized() leaves only {<, ≤, =}; render flipped ops
                // distinctly anyway so an un-canonicalized atom cannot alias.
                crate::atom::CompOp::Ge => 'g',
                crate::atom::CompOp::Gt => '>',
            };
            let coeffs = a.term().coeffs();
            let last = coeffs
                .iter()
                .rposition(|c| !c.is_zero())
                .map_or(0, |i| i + 1);
            let _ = write!(out, "A{op}[");
            for (i, c) in coeffs[..last].iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            let _ = write!(out, ";{}]", a.term().constant_part());
        }
        Formula::Rel(name, vars) => {
            let _ = write!(out, "R{}(", name);
            for (i, v) in vars.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{v}");
            }
            out.push(')');
        }
        Formula::And(fs) | Formula::Or(fs) => {
            out.push(if matches!(f, Formula::And(_)) {
                '&'
            } else {
                '|'
            });
            out.push('(');
            for (i, g) in fs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_into(g, out);
            }
            out.push(')');
        }
        Formula::Not(g) => {
            out.push('!');
            out.push('(');
            render_into(g, out);
            out.push(')');
        }
        Formula::Exists(vars, g) => {
            out.push('E');
            out.push('[');
            for (i, v) in vars.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{v}");
            }
            out.push(']');
            out.push('(');
            render_into(g, out);
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{Atom, CompOp};
    use crate::term::LinTerm;
    use cdb_num::Rational;

    fn le(coeffs: &[i64], c: i64) -> Formula {
        Formula::Atom(Atom::le_from_ints(coeffs, c))
    }

    fn key(f: &Formula, arity: usize) -> CanonicalKey {
        CanonicalKey::of_formula(f, arity)
    }

    #[test]
    fn atom_order_is_invisible() {
        let a = Formula::and(vec![le(&[1, 0], -1), le(&[0, 1], -2)]);
        let b = Formula::and(vec![le(&[0, 1], -2), le(&[1, 0], -1)]);
        assert_eq!(key(&a, 2), key(&b, 2));
    }

    #[test]
    fn positive_scaling_and_orientation_are_invisible() {
        // 2x - 4 <= 0  ≡  x - 2 <= 0  ≡  -(x - 2) >= 0, and with halved
        // coefficients.
        let a = Formula::Atom(Atom::le_from_ints(&[2], -4));
        let b = Formula::Atom(Atom::le_from_ints(&[1], -2));
        let c = Formula::Atom(Atom::new(LinTerm::from_ints(&[-1], 2), CompOp::Ge));
        let d = Formula::Atom(Atom::new(
            LinTerm::new(vec![Rational::from_ratio(1, 2)], Rational::from_int(-1)),
            CompOp::Le,
        ));
        let k = key(&a, 1);
        assert_eq!(k, key(&b, 1));
        assert_eq!(k, key(&c, 1));
        assert_eq!(k, key(&d, 1));
    }

    #[test]
    fn equality_sign_is_oriented() {
        let a = Formula::Atom(Atom::new(LinTerm::from_ints(&[1, -1], 0), CompOp::Eq));
        let b = Formula::Atom(Atom::new(LinTerm::from_ints(&[-1, 1], 0), CompOp::Eq));
        assert_eq!(key(&a, 2), key(&b, 2));
    }

    #[test]
    fn arity_padding_is_invisible_but_ambient_arity_is_not() {
        let a = le(&[1], -1);
        let padded = le(&[1, 0], -1);
        assert_eq!(key(&a, 2), key(&padded, 2));
        assert_ne!(key(&a, 1), key(&a, 2), "dimension must stay in the key");
    }

    #[test]
    fn bound_variable_renaming_is_invisible() {
        // ∃x2. (x0 ≤ x2 ∧ x2 ≤ x1)  vs the same with the bound variable
        // renamed to x5 (a non-adjacent index).
        let body2 = Formula::and(vec![le(&[1, 0, -1], 0), le(&[0, -1, 1], 0)]);
        let f2 = Formula::exists(vec![2], body2);
        let body5 = Formula::and(vec![
            le(&[1, 0, 0, 0, 0, -1], 0),
            le(&[0, -1, 0, 0, 0, 1], 0),
        ]);
        let f5 = Formula::exists(vec![5], body5);
        assert_eq!(key(&f2, 2), key(&f5, 2));
    }

    #[test]
    fn swapping_two_bound_variables_is_invisible() {
        // ∃x1,x2. (x0 ≤ x1 ∧ x1 ≤ x2) with the roles of x1/x2 exchanged.
        let a = Formula::exists(
            vec![1, 2],
            Formula::and(vec![le(&[1, -1, 0], 0), le(&[0, 1, -1], 0)]),
        );
        let b = Formula::exists(
            vec![1, 2],
            Formula::and(vec![le(&[1, 0, -1], 0), le(&[0, -1, 1], 0)]),
        );
        assert_eq!(key(&a, 1), key(&b, 1));
    }

    #[test]
    fn unused_bound_variables_are_dropped() {
        let f = Formula::exists(vec![1], le(&[1], -1));
        assert_eq!(key(&f, 1), key(&le(&[1], -1), 1));
    }

    #[test]
    fn adjacent_quantifier_blocks_merge() {
        let body = Formula::and(vec![le(&[1, -1, 0], 0), le(&[0, 1, -1], 0)]);
        let nested = Formula::exists(vec![1], Formula::exists(vec![2], body.clone()));
        let flat = Formula::exists(vec![1, 2], body);
        assert_eq!(key(&nested, 1), key(&flat, 1));
    }

    #[test]
    fn connective_units_simplify() {
        let t = Formula::and(vec![Formula::True, le(&[1], 0)]);
        assert_eq!(key(&t, 1), key(&le(&[1], 0), 1));
        let f = Formula::and(vec![Formula::False, le(&[1], 0)]);
        assert_eq!(key(&f, 1), key(&Formula::False, 1));
        let o = Formula::or(vec![Formula::True, le(&[1], 0)]);
        assert_eq!(key(&o, 1), key(&Formula::True, 1));
        let nn = Formula::not(Formula::not(le(&[1], 0)));
        assert_eq!(key(&nn, 1), key(&le(&[1], 0), 1));
    }

    #[test]
    fn distinct_semantics_keep_distinct_keys() {
        assert_ne!(key(&le(&[1], -1), 1), key(&le(&[1], -2), 1));
        assert_ne!(
            key(&le(&[1], -1), 1),
            key(
                &Formula::Atom(Atom::new(LinTerm::from_ints(&[1], -1), CompOp::Lt)),
                1
            ),
            "strictness is semantic"
        );
        assert_ne!(
            key(&Formula::rel("R", vec![0]), 1),
            key(&Formula::rel("S", vec![0]), 1)
        );
    }

    #[test]
    fn relation_keys_ignore_name_and_tuple_order() {
        let a = GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[1.0, 1.0]);
        let b = GeneralizedRelation::from_box_f64(&[2.0, 0.0], &[3.0, 1.0]);
        let ab = a.union(&b);
        let ba = b.union(&a);
        assert_eq!(
            CanonicalKey::of_relation(&ab),
            CanonicalKey::of_relation(&ba)
        );
        assert_ne!(CanonicalKey::of_relation(&a), CanonicalKey::of_relation(&b));
    }

    #[test]
    fn key_hash_is_stable_across_calls() {
        let k = CanonicalKey::of_formula(&le(&[1, 2], -3), 2);
        assert_eq!(k.hash64(), k.hash64());
        let other = CanonicalKey::of_formula(&le(&[1, 2], -4), 2);
        assert_ne!(k.hash64(), other.hash64());
    }
}
