//! First-order formulas over the linear structure and a database schema
//! (`FO + LIN`).

use std::fmt;

use cdb_num::Rational;

use crate::atom::{Atom, CompOp};
use crate::ConstraintError;

/// A formula of `FO + LIN`. Variables are identified by their index in the
/// ambient arity; relation atoms refer to schema relations by name and list
/// the variable indices they are applied to.
#[derive(Clone, Debug, PartialEq)]
pub enum Formula {
    /// The always-true formula.
    True,
    /// The always-false formula.
    False,
    /// A linear constraint atom.
    Atom(Atom),
    /// A relation atom `R(x_{i_1}, …, x_{i_k})`.
    Rel(String, Vec<usize>),
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
    /// Negation.
    Not(Box<Formula>),
    /// Existential quantification over the listed variables.
    Exists(Vec<usize>, Box<Formula>),
}

impl Formula {
    /// Wraps an atom.
    pub fn atom(a: Atom) -> Formula {
        Formula::Atom(a)
    }

    /// A relation atom.
    pub fn rel(name: impl Into<String>, vars: Vec<usize>) -> Formula {
        Formula::Rel(name.into(), vars)
    }

    /// Conjunction of a list of formulas (empty list is `True`).
    pub fn and(parts: Vec<Formula>) -> Formula {
        match parts.len() {
            0 => Formula::True,
            1 => parts.into_iter().next().expect("len checked"),
            _ => Formula::And(parts),
        }
    }

    /// Disjunction of a list of formulas (empty list is `False`).
    pub fn or(parts: Vec<Formula>) -> Formula {
        match parts.len() {
            0 => Formula::False,
            1 => parts.into_iter().next().expect("len checked"),
            _ => Formula::Or(parts),
        }
    }

    /// Negation.
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Box::new(f))
    }

    /// Existential quantification.
    pub fn exists(vars: Vec<usize>, f: Formula) -> Formula {
        if vars.is_empty() {
            f
        } else {
            Formula::Exists(vars, Box::new(f))
        }
    }

    /// Returns `true` when the formula contains no relation atoms.
    pub fn is_relation_free(&self) -> bool {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) => true,
            Formula::Rel(..) => false,
            Formula::And(fs) | Formula::Or(fs) => fs.iter().all(|f| f.is_relation_free()),
            Formula::Not(f) => f.is_relation_free(),
            Formula::Exists(_, f) => f.is_relation_free(),
        }
    }

    /// Returns `true` when the formula contains no quantifiers.
    pub fn is_quantifier_free(&self) -> bool {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) | Formula::Rel(..) => true,
            Formula::And(fs) | Formula::Or(fs) => fs.iter().all(|f| f.is_quantifier_free()),
            Formula::Not(f) => f.is_quantifier_free(),
            Formula::Exists(..) => false,
        }
    }

    /// Returns `true` when every relation atom occurs under an even number of
    /// negations and no universal quantifier is present — the *positive
    /// existential* fragment of Theorem 4.4.
    pub fn is_existential_positive(&self) -> bool {
        fn walk(f: &Formula, negated: bool) -> bool {
            match f {
                Formula::True | Formula::False | Formula::Atom(_) => true,
                Formula::Rel(..) => !negated,
                Formula::And(fs) | Formula::Or(fs) => fs.iter().all(|g| walk(g, negated)),
                Formula::Not(g) => walk(g, !negated),
                Formula::Exists(_, g) => !negated && walk(g, negated),
            }
        }
        walk(self, false)
    }

    /// The largest variable index mentioned, plus one (a lower bound on the
    /// ambient arity).
    pub fn min_arity(&self) -> usize {
        match self {
            Formula::True | Formula::False => 0,
            Formula::Atom(a) => a.arity(),
            Formula::Rel(_, vars) => vars.iter().map(|v| v + 1).max().unwrap_or(0),
            Formula::And(fs) | Formula::Or(fs) => {
                fs.iter().map(|f| f.min_arity()).max().unwrap_or(0)
            }
            Formula::Not(f) => f.min_arity(),
            Formula::Exists(vars, f) => f
                .min_arity()
                .max(vars.iter().map(|v| v + 1).max().unwrap_or(0)),
        }
    }

    /// Exact evaluation at a rational point; fails on relation atoms.
    pub fn eval(&self, point: &[Rational]) -> Result<bool, ConstraintError> {
        match self {
            Formula::True => Ok(true),
            Formula::False => Ok(false),
            Formula::Atom(a) => Ok(a.satisfied(point)),
            Formula::Rel(name, _) => Err(ConstraintError::UnknownRelation(name.clone())),
            Formula::And(fs) => {
                for f in fs {
                    if !f.eval(point)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Formula::Or(fs) => {
                for f in fs {
                    if f.eval(point)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Formula::Not(f) => Ok(!f.eval(point)?),
            Formula::Exists(..) => Err(ConstraintError::UnsupportedConstruct(
                "cannot evaluate a quantified formula pointwise; eliminate quantifiers first"
                    .into(),
            )),
        }
    }

    /// Floating-point evaluation with tolerance; fails on relation atoms and
    /// quantifiers.
    pub fn eval_f64(&self, point: &[f64], tol: f64) -> Result<bool, ConstraintError> {
        match self {
            Formula::True => Ok(true),
            Formula::False => Ok(false),
            Formula::Atom(a) => Ok(a.satisfied_f64(point, tol)),
            Formula::Rel(name, _) => Err(ConstraintError::UnknownRelation(name.clone())),
            Formula::And(fs) => {
                for f in fs {
                    if !f.eval_f64(point, tol)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Formula::Or(fs) => {
                for f in fs {
                    if f.eval_f64(point, tol)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Formula::Not(f) => Ok(!f.eval_f64(point, tol)?),
            Formula::Exists(..) => Err(ConstraintError::UnsupportedConstruct(
                "cannot evaluate a quantified formula pointwise; eliminate quantifiers first"
                    .into(),
            )),
        }
    }

    /// Negation normal form of a quantifier-free, relation-free formula:
    /// negations are pushed to the atoms and eliminated there (a negated
    /// equality becomes a disjunction of strict inequalities).
    pub fn to_nnf(&self) -> Result<Formula, ConstraintError> {
        fn nnf(f: &Formula, negated: bool) -> Result<Formula, ConstraintError> {
            match f {
                Formula::True => Ok(if negated {
                    Formula::False
                } else {
                    Formula::True
                }),
                Formula::False => Ok(if negated {
                    Formula::True
                } else {
                    Formula::False
                }),
                Formula::Atom(a) => {
                    if !negated {
                        return Ok(Formula::Atom(a.clone()));
                    }
                    match a.op() {
                        CompOp::Eq => Ok(Formula::Or(vec![
                            Formula::Atom(Atom::new(a.term().clone(), CompOp::Lt)),
                            Formula::Atom(Atom::new(a.term().clone(), CompOp::Gt)),
                        ])),
                        op => Ok(Formula::Atom(Atom::new(a.term().clone(), op.negate()))),
                    }
                }
                Formula::Rel(name, _) => Err(ConstraintError::UnknownRelation(name.clone())),
                Formula::And(fs) => {
                    let parts = fs
                        .iter()
                        .map(|g| nnf(g, negated))
                        .collect::<Result<Vec<_>, _>>()?;
                    Ok(if negated {
                        Formula::or(parts)
                    } else {
                        Formula::and(parts)
                    })
                }
                Formula::Or(fs) => {
                    let parts = fs
                        .iter()
                        .map(|g| nnf(g, negated))
                        .collect::<Result<Vec<_>, _>>()?;
                    Ok(if negated {
                        Formula::and(parts)
                    } else {
                        Formula::or(parts)
                    })
                }
                Formula::Not(g) => nnf(g, !negated),
                Formula::Exists(..) => Err(ConstraintError::UnsupportedConstruct(
                    "NNF is defined on quantifier-free formulas here".into(),
                )),
            }
        }
        nnf(self, false)
    }

    /// Disjunctive normal form of a quantifier-free, relation-free formula:
    /// a list of conjunctions of atoms. `None` entries never occur; an empty
    /// outer list means `False`, a conjunction with no atoms means `True`.
    pub fn to_dnf(&self) -> Result<Vec<Vec<Atom>>, ConstraintError> {
        let nnf = self.to_nnf()?;
        fn dnf(f: &Formula) -> Vec<Vec<Atom>> {
            match f {
                Formula::True => vec![Vec::new()],
                Formula::False => Vec::new(),
                Formula::Atom(a) => vec![vec![a.clone()]],
                Formula::Or(fs) => fs.iter().flat_map(dnf).collect(),
                Formula::And(fs) => {
                    let mut acc: Vec<Vec<Atom>> = vec![Vec::new()];
                    for g in fs {
                        let parts = dnf(g);
                        let mut next = Vec::with_capacity(acc.len() * parts.len());
                        for left in &acc {
                            for right in &parts {
                                let mut combined = left.clone();
                                combined.extend(right.iter().cloned());
                                next.push(combined);
                            }
                        }
                        acc = next;
                        if acc.is_empty() {
                            break;
                        }
                    }
                    acc
                }
                // NNF output contains no Not/Exists/Rel.
                _ => unreachable!("unexpected connective after NNF"),
            }
        }
        Ok(dnf(&nnf))
    }

    /// Collects the relation names used by the formula.
    pub fn relation_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        fn walk(f: &Formula, names: &mut Vec<String>) {
            match f {
                Formula::Rel(name, _) => {
                    if !names.contains(name) {
                        names.push(name.clone());
                    }
                }
                Formula::And(fs) | Formula::Or(fs) => fs.iter().for_each(|g| walk(g, names)),
                Formula::Not(g) | Formula::Exists(_, g) => walk(g, names),
                _ => {}
            }
        }
        walk(self, &mut names);
        names
    }

    /// The canonical representative of this formula's syntactic equivalence
    /// class (see [`crate::canonical`] for the invariances).
    pub fn canonicalize(&self) -> Formula {
        crate::canonical::canonicalize(self)
    }

    /// The prepared-store cache key of this formula in the given ambient
    /// arity: canonicalize, then render (see [`crate::canonical`]).
    pub fn canonical_key(&self, arity: usize) -> crate::canonical::CanonicalKey {
        crate::canonical::CanonicalKey::of_formula(self, arity)
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Atom(a) => write!(f, "({a})"),
            Formula::Rel(name, vars) => {
                write!(f, "{name}(")?;
                for (i, v) in vars.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "x{v}")?;
                }
                write!(f, ")")
            }
            Formula::And(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " and ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " or ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Formula::Not(g) => write!(f, "not {g}"),
            Formula::Exists(vars, g) => {
                write!(f, "exists ")?;
                for (i, v) in vars.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "x{v}")?;
                }
                write!(f, ". {g}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::LinTerm;

    fn x_le(arity: usize, var: usize, bound: i64) -> Formula {
        Formula::Atom(Atom::new(
            LinTerm::var(arity, var).sub(&LinTerm::constant(arity, Rational::from_int(bound))),
            CompOp::Le,
        ))
    }

    fn x_ge(arity: usize, var: usize, bound: i64) -> Formula {
        Formula::Atom(Atom::new(
            LinTerm::var(arity, var).sub(&LinTerm::constant(arity, Rational::from_int(bound))),
            CompOp::Ge,
        ))
    }

    #[test]
    fn boolean_evaluation() {
        let f = Formula::and(vec![x_ge(2, 0, 0), x_le(2, 0, 1), x_le(2, 1, 2)]);
        assert!(f.eval_f64(&[0.5, 1.0], 1e-9).unwrap());
        assert!(!f.eval_f64(&[1.5, 1.0], 1e-9).unwrap());
        let g = Formula::or(vec![f.clone(), x_ge(2, 1, 10)]);
        assert!(g.eval_f64(&[5.0, 11.0], 1e-9).unwrap());
        assert!(!g.eval_f64(&[5.0, 5.0], 1e-9).unwrap());
        let n = Formula::not(g);
        assert!(n.eval_f64(&[5.0, 5.0], 1e-9).unwrap());
        assert!(Formula::True.eval(&[]).unwrap());
        assert!(!Formula::False.eval(&[]).unwrap());
    }

    #[test]
    fn exact_evaluation_respects_strictness() {
        let strict = Formula::Atom(Atom::new(LinTerm::from_ints(&[1], -1), CompOp::Lt));
        assert!(!strict.eval(&[Rational::from_int(1)]).unwrap());
        let non_strict = Formula::Atom(Atom::new(LinTerm::from_ints(&[1], -1), CompOp::Le));
        assert!(non_strict.eval(&[Rational::from_int(1)]).unwrap());
    }

    #[test]
    fn nnf_pushes_negations_to_atoms() {
        let f = Formula::not(Formula::and(vec![x_le(1, 0, 1), x_ge(1, 0, 0)]));
        let nnf = f.to_nnf().unwrap();
        // The NNF contains no Not nodes.
        fn has_not(f: &Formula) -> bool {
            match f {
                Formula::Not(_) => true,
                Formula::And(fs) | Formula::Or(fs) => fs.iter().any(has_not),
                _ => false,
            }
        }
        assert!(!has_not(&nnf));
        // Semantics preserved at sample points.
        for p in [[-1.0], [0.5], [2.0]] {
            assert_eq!(
                f.eval_f64(&p, 1e-9).unwrap(),
                nnf.eval_f64(&p, 1e-9).unwrap(),
                "at {p:?}"
            );
        }
    }

    #[test]
    fn negated_equality_splits() {
        let eq = Formula::Atom(Atom::new(LinTerm::from_ints(&[1, -1], 0), CompOp::Eq));
        let neg = Formula::not(eq).to_nnf().unwrap();
        assert!(matches!(neg, Formula::Or(_)));
        assert!(neg
            .eval(&[Rational::from_int(1), Rational::from_int(2)])
            .unwrap());
        assert!(!neg
            .eval(&[Rational::from_int(2), Rational::from_int(2)])
            .unwrap());
    }

    #[test]
    fn dnf_preserves_semantics() {
        // (x <= 1 or x >= 3) and not (x <= 0)
        let f = Formula::and(vec![
            Formula::or(vec![x_le(1, 0, 1), x_ge(1, 0, 3)]),
            Formula::not(x_le(1, 0, 0)),
        ]);
        let dnf = f.to_dnf().unwrap();
        assert!(dnf.len() >= 2);
        for p in [[-1.0], [0.5], [2.0], [3.5]] {
            let direct = f.eval_f64(&p, 1e-9).unwrap();
            let via_dnf = dnf
                .iter()
                .any(|conj| conj.iter().all(|a| a.satisfied_f64(&p, 1e-9)));
            assert_eq!(direct, via_dnf, "at {p:?}");
        }
    }

    #[test]
    fn fragments_and_metadata() {
        let f = Formula::exists(
            vec![2],
            Formula::and(vec![
                Formula::rel("R", vec![0, 2]),
                Formula::rel("S", vec![2, 1]),
            ]),
        );
        assert!(f.is_existential_positive());
        assert!(!f.is_quantifier_free());
        assert!(!f.is_relation_free());
        assert_eq!(f.min_arity(), 3);
        assert_eq!(f.relation_names(), vec!["R".to_string(), "S".to_string()]);

        let neg_rel = Formula::not(Formula::rel("R", vec![0]));
        assert!(!neg_rel.is_existential_positive());

        let qf = Formula::and(vec![x_le(2, 0, 1)]);
        assert!(qf.is_quantifier_free() && qf.is_relation_free());
    }

    #[test]
    fn quantified_formula_cannot_be_evaluated_pointwise() {
        let f = Formula::exists(vec![0], x_le(1, 0, 1));
        assert!(f.eval_f64(&[0.0], 1e-9).is_err());
    }

    #[test]
    fn display_roundtrip_is_readable() {
        let f = Formula::exists(
            vec![1],
            Formula::and(vec![x_le(2, 0, 1), Formula::rel("R", vec![0, 1])]),
        );
        let s = f.to_string();
        assert!(s.contains("exists x1"));
        assert!(s.contains("R(x0, x1)"));
    }
}
