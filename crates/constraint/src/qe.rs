//! Quantifier elimination by Fourier–Motzkin.
//!
//! `Rlin` admits elimination of quantifiers (Section 2 of the paper); the
//! classical procedure is Fourier–Motzkin, whose output size is doubly
//! exponential in the number of eliminated variables — exactly the cost the
//! paper's sampling-based projection (Algorithm 2) is designed to avoid. The
//! implementation here is exact (rational arithmetic) and doubles as the
//! symbolic baseline of experiment E9.

use cdb_num::Rational;

use crate::atom::{Atom, CompOp};
use crate::formula::Formula;
use crate::tuple::GeneralizedTuple;
use crate::ConstraintError;

/// Eliminates the variable `var` from a conjunction of atoms, producing an
/// equivalent conjunction over the remaining variables (the eliminated
/// variable keeps its slot with a zero coefficient).
pub fn eliminate_variable(atoms: &[Atom], var: usize) -> Vec<Atom> {
    // Prefer substitution through an equality that mentions the variable.
    if let Some(pos) = atoms
        .iter()
        .position(|a| a.op() == CompOp::Eq && !a.term().coeff(var).is_zero())
    {
        let eq = atoms[pos].normalized();
        let a_coeff = eq.term().coeff(var).clone();
        // a x + r = 0  =>  x = -(r)/a ; as a term: replacement = -(t - a x)/a.
        let mut rest = eq.term().clone();
        rest = rest.sub(&crate::term::LinTerm::var(rest.arity(), var).scale(&a_coeff));
        let replacement = rest.scale(&(-Rational::one() / a_coeff));
        return atoms
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != pos)
            .map(|(_, a)| Atom::new(a.term().substitute(var, &replacement), a.op()).normalized())
            .collect();
    }

    let mut kept: Vec<Atom> = Vec::new();
    let mut uppers: Vec<Atom> = Vec::new(); // coefficient of var > 0 (after Le/Lt normalization)
    let mut lowers: Vec<Atom> = Vec::new(); // coefficient of var < 0
    for a in atoms {
        let n = a.normalized();
        let c = n.term().coeff(var);
        if c.is_zero() {
            kept.push(n);
        } else if c.is_positive() {
            uppers.push(n);
        } else {
            lowers.push(n);
        }
    }
    // Combine every (lower, upper) pair with the positive combination that
    // cancels the variable:  a_u · lower + (−a_l) · upper.
    for lo in &lowers {
        let a_l = lo.term().coeff(var).clone();
        for up in &uppers {
            let a_u = up.term().coeff(var).clone();
            let combined = lo.term().scale(&a_u).add(&up.term().scale(&-a_l.clone()));
            debug_assert!(combined.coeff(var).is_zero(), "variable must cancel");
            let op = if lo.op() == CompOp::Lt || up.op() == CompOp::Lt {
                CompOp::Lt
            } else {
                CompOp::Le
            };
            let atom = Atom::new(combined, op).normalized();
            // Constant atoms are either trivially true (dropped) or falsify
            // the whole conjunction (kept so emptiness is still visible).
            if atom.term().is_constant() {
                let c = atom.term().constant_part();
                let holds = match atom.op() {
                    CompOp::Lt => c.is_negative(),
                    CompOp::Le => !c.is_positive(),
                    _ => c.is_zero(),
                };
                if holds {
                    continue;
                }
            }
            kept.push(atom);
        }
    }
    kept
}

/// Eliminates several variables in sequence.
pub fn eliminate_variables(atoms: &[Atom], vars: &[usize]) -> Vec<Atom> {
    let mut current = atoms.to_vec();
    for &v in vars {
        current = eliminate_variable(&current, v);
    }
    current
}

/// Removes atoms that are implied by the remaining ones (exact LP
/// certificates on the closure) as well as duplicates. This keeps the
/// doubly-exponential growth of repeated eliminations in check.
pub fn prune_redundant(atoms: &[Atom], arity: usize) -> Vec<Atom> {
    use cdb_lp::{LpOutcome, LpProblem};
    // Deduplicate syntactically first (after normalization).
    let mut unique: Vec<Atom> = Vec::new();
    for a in atoms {
        let n = a.normalized();
        if !unique.contains(&n) {
            unique.push(n);
        }
    }
    if unique.len() <= 1 {
        return unique;
    }
    let mut kept: Vec<Atom> = Vec::new();
    for i in 0..unique.len() {
        // unique[i] is redundant iff maximizing its left-hand side subject to
        // all *other* (kept or not-yet-processed) constraints cannot exceed 0.
        let mut lp: LpProblem<Rational> = LpProblem::new(arity);
        for (j, other) in unique.iter().enumerate() {
            if i == j {
                continue;
            }
            if other.op() == CompOp::Eq {
                lp.add_eq(
                    other.term().coeffs().to_vec(),
                    -other.term().constant_part().clone(),
                );
            } else {
                lp.add_le(
                    other.term().coeffs().to_vec(),
                    -other.term().constant_part().clone(),
                );
            }
        }
        let candidate = &unique[i];
        if candidate.op() == CompOp::Eq {
            kept.push(candidate.clone());
            continue;
        }
        let redundant = match lp.maximize(candidate.term().coeffs().to_vec()) {
            LpOutcome::Optimal { value, .. } => value <= -candidate.term().constant_part().clone(),
            _ => false,
        };
        if !redundant {
            kept.push(candidate.clone());
        }
    }
    if kept.is_empty() {
        // Everything was mutually implied; keep one representative.
        kept.push(unique[0].clone());
    }
    kept
}

/// Projects a generalized tuple onto the listed coordinates (in order),
/// eliminating every other variable and re-indexing the result.
pub fn project_tuple(tuple: &GeneralizedTuple, keep: &[usize]) -> GeneralizedTuple {
    let arity = tuple.arity();
    for &k in keep {
        assert!(k < arity, "projection coordinate out of range");
    }
    let eliminate: Vec<usize> = (0..arity).filter(|i| !keep.contains(i)).collect();
    let reduced = eliminate_variables(tuple.atoms(), &eliminate);
    let reduced = prune_redundant(&reduced, arity);
    // Re-index: old coordinate keep[j] becomes new coordinate j.
    let new_arity = keep.len();
    let mut mapping = vec![0usize; arity];
    for (j, &k) in keep.iter().enumerate() {
        mapping[k] = j;
    }
    let atoms = reduced
        .iter()
        .map(|a| {
            // All surviving coefficients are on kept coordinates.
            for (i, c) in a.term().coeffs().iter().enumerate() {
                if !c.is_zero() {
                    debug_assert!(keep.contains(&i), "eliminated variable survived");
                }
            }
            a.remap(new_arity, &mapping)
        })
        .collect();
    GeneralizedTuple::new(new_arity, atoms)
}

/// Eliminates every quantifier from a relation-free formula, producing an
/// equivalent quantifier-free formula (in DNF shape).
pub fn eliminate_quantifiers(formula: &Formula) -> Result<Formula, ConstraintError> {
    match formula {
        Formula::True | Formula::False | Formula::Atom(_) => Ok(formula.clone()),
        Formula::Rel(name, _) => Err(ConstraintError::UnknownRelation(name.clone())),
        Formula::And(fs) => Ok(Formula::and(
            fs.iter()
                .map(eliminate_quantifiers)
                .collect::<Result<Vec<_>, _>>()?,
        )),
        Formula::Or(fs) => Ok(Formula::or(
            fs.iter()
                .map(eliminate_quantifiers)
                .collect::<Result<Vec<_>, _>>()?,
        )),
        Formula::Not(f) => Ok(Formula::not(eliminate_quantifiers(f)?)),
        Formula::Exists(vars, body) => {
            let inner = eliminate_quantifiers(body)?;
            let arity = inner
                .min_arity()
                .max(vars.iter().map(|v| v + 1).max().unwrap_or(0));
            let dnf = inner.to_dnf()?;
            let mut disjuncts = Vec::with_capacity(dnf.len());
            for conj in dnf {
                // Pad the atoms to a common arity before elimination.
                let padded: Vec<Atom> = conj
                    .iter()
                    .map(|a| {
                        let mapping: Vec<usize> = (0..a.arity()).collect();
                        a.remap(arity, &mapping)
                    })
                    .collect();
                let eliminated = eliminate_variables(&padded, vars);
                let pruned = prune_redundant(&eliminated, arity);
                disjuncts.push(Formula::and(
                    pruned.into_iter().map(Formula::Atom).collect(),
                ));
            }
            Ok(Formula::or(disjuncts))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::LinTerm;

    fn le(coeffs: &[i64], c: i64) -> Atom {
        Atom::le_from_ints(coeffs, c)
    }

    #[test]
    fn eliminate_from_triangle() {
        // 0 <= y, y <= x, x <= 1  — eliminate y: expect 0 <= x (and x <= 1 kept).
        let atoms = vec![
            le(&[0, -1], 0), // -y <= 0
            le(&[-1, 1], 0), // y - x <= 0
            le(&[1, 0], -1), // x - 1 <= 0
        ];
        let out = eliminate_variable(&atoms, 1);
        // Every surviving atom only mentions x.
        for a in &out {
            assert!(a.term().coeff(1).is_zero());
        }
        // Semantics: exists y. triangle(x,y)  <=>  0 <= x <= 1.
        for x in [-0.5, 0.0, 0.5, 1.0, 1.5] {
            let expected = (0.0..=1.0).contains(&x);
            let got = out.iter().all(|a| a.satisfied_f64(&[x, 123.0], 1e-9));
            assert_eq!(got, expected, "x = {x}");
        }
    }

    #[test]
    fn elimination_via_equality_substitution() {
        // x = 2y and 0 <= x <= 4; eliminate x: 0 <= 2y <= 4.
        let atoms = vec![
            Atom::new(LinTerm::from_ints(&[1, -2], 0), CompOp::Eq),
            le(&[-1, 0], 0),
            le(&[1, 0], -4),
        ];
        let out = eliminate_variable(&atoms, 0);
        for y in [-1.0, 0.0, 1.0, 2.0, 3.0] {
            let expected = (0.0..=2.0).contains(&y);
            let got = out.iter().all(|a| a.satisfied_f64(&[99.0, y], 1e-9));
            assert_eq!(got, expected, "y = {y}");
        }
    }

    #[test]
    fn infeasible_conjunction_stays_infeasible() {
        // x <= 0 and x >= 1; eliminating x must leave a contradictory constant atom.
        let atoms = vec![le(&[1], 0), le(&[-1], 1)];
        let out = eliminate_variable(&atoms, 0);
        assert!(!out.is_empty());
        let t = GeneralizedTuple::new(1, out);
        assert!(t.closure_is_empty());
    }

    #[test]
    fn strictness_propagates() {
        // x < y and y <= 1  =>  x < 1.
        let atoms = vec![
            Atom::new(LinTerm::from_ints(&[1, -1], 0), CompOp::Lt),
            le(&[0, 1], -1),
        ];
        let out = eliminate_variable(&atoms, 1);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].op(), CompOp::Lt);
    }

    #[test]
    fn projection_of_a_square_is_an_interval() {
        let square = GeneralizedTuple::from_box_f64(&[0.0, 2.0], &[1.0, 3.0]);
        let proj = project_tuple(&square, &[1]);
        assert_eq!(proj.arity(), 1);
        assert!(proj.satisfied_f64(&[2.5], 1e-9));
        assert!(!proj.satisfied_f64(&[1.0], 1e-9));
        assert!(!proj.satisfied_f64(&[3.5], 1e-9));
    }

    #[test]
    fn projection_of_rotated_triangle() {
        // Triangle with vertices (0,0), (1,1), (2,0): y <= x, y <= 2 - x, y >= 0.
        let atoms = vec![
            le(&[-1, 1], 0), // y - x <= 0
            le(&[1, 1], -2), // x + y - 2 <= 0
            le(&[0, -1], 0), // -y <= 0
        ];
        let tri = GeneralizedTuple::new(2, atoms);
        // Projection onto x is [0, 2].
        let px = project_tuple(&tri, &[0]);
        for (x, expected) in [
            (-0.5, false),
            (0.0, true),
            (1.0, true),
            (2.0, true),
            (2.5, false),
        ] {
            assert_eq!(px.satisfied_f64(&[x], 1e-9), expected, "x = {x}");
        }
        // Projection onto y is [0, 1].
        let py = project_tuple(&tri, &[1]);
        for (y, expected) in [
            (-0.5, false),
            (0.0, true),
            (0.5, true),
            (1.0, true),
            (1.5, false),
        ] {
            assert_eq!(py.satisfied_f64(&[y], 1e-9), expected, "y = {y}");
        }
    }

    #[test]
    fn redundancy_pruning_shrinks_output() {
        // x <= 1, x <= 2, x <= 3 and a duplicate.
        let atoms = vec![le(&[1], -1), le(&[1], -2), le(&[1], -3), le(&[1], -1)];
        let pruned = prune_redundant(&atoms, 1);
        assert_eq!(pruned.len(), 1);
        assert!(pruned[0].satisfied_f64(&[0.9], 1e-9));
        assert!(!pruned[0].satisfied_f64(&[1.1], 1e-9));
    }

    #[test]
    fn quantifier_elimination_on_formula() {
        // exists y. (0 <= y and y <= x and x <= 1) — the projection of the triangle.
        let tri = Formula::and(vec![
            Formula::Atom(le(&[0, -1], 0)),
            Formula::Atom(le(&[-1, 1], 0)),
            Formula::Atom(le(&[1, 0], -1)),
        ]);
        let q = Formula::exists(vec![1], tri);
        let qf = eliminate_quantifiers(&q).unwrap();
        assert!(qf.is_quantifier_free());
        for x in [-0.5f64, 0.0, 0.7, 1.0, 1.2] {
            let expected = (0.0..=1.0).contains(&x);
            assert_eq!(qf.eval_f64(&[x, 0.0], 1e-9).unwrap(), expected, "x = {x}");
        }
    }

    #[test]
    fn nested_quantifiers() {
        // exists z. exists y. (x <= y and y <= z and z <= 5)  <=>  x <= 5.
        let chain = Formula::and(vec![
            Formula::Atom(le(&[1, -1, 0], 0)),
            Formula::Atom(le(&[0, 1, -1], 0)),
            Formula::Atom(le(&[0, 0, 1], -5)),
        ]);
        let q = Formula::exists(vec![2], Formula::exists(vec![1], chain));
        let qf = eliminate_quantifiers(&q).unwrap();
        for x in [-10.0, 0.0, 5.0, 6.0] {
            let expected = x <= 5.0;
            assert_eq!(
                qf.eval_f64(&[x, 0.0, 0.0], 1e-9).unwrap(),
                expected,
                "x = {x}"
            );
        }
    }
}
