//! Atomic linear constraints `term ⋈ 0`.

use cdb_geometry::Halfspace;
use cdb_num::Rational;
use std::fmt;

use crate::term::LinTerm;

/// Comparison operator of an atomic constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CompOp {
    /// `term < 0`
    Lt,
    /// `term ≤ 0`
    Le,
    /// `term = 0`
    Eq,
    /// `term ≥ 0`
    Ge,
    /// `term > 0`
    Gt,
}

impl CompOp {
    /// The operator for the negated atom.
    pub fn negate(self) -> CompOp {
        match self {
            CompOp::Lt => CompOp::Ge,
            CompOp::Le => CompOp::Gt,
            CompOp::Eq => CompOp::Eq, // handled specially (disjunction) by Formula::negate
            CompOp::Ge => CompOp::Lt,
            CompOp::Gt => CompOp::Le,
        }
    }

    /// Is the comparison strict?
    pub fn is_strict(self) -> bool {
        matches!(self, CompOp::Lt | CompOp::Gt)
    }
}

/// An atomic constraint `term ⋈ 0` over the structure `Rlin`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Atom {
    term: LinTerm,
    op: CompOp,
}

impl Atom {
    /// Creates the atom `term ⋈ 0`.
    pub fn new(term: LinTerm, op: CompOp) -> Self {
        Atom { term, op }
    }

    /// Convenience: the constraint `coeffs·x + c ≤ 0` from integers.
    pub fn le_from_ints(coeffs: &[i64], constant: i64) -> Self {
        Atom::new(LinTerm::from_ints(coeffs, constant), CompOp::Le)
    }

    /// Convenience: the box constraint `lo ≤ x_i ≤ hi` as a pair of atoms.
    pub fn bounds(arity: usize, var: usize, lo: Rational, hi: Rational) -> (Atom, Atom) {
        let x = LinTerm::var(arity, var);
        (
            // lo - x <= 0
            Atom::new(LinTerm::constant(arity, lo).sub(&x), CompOp::Le),
            // x - hi <= 0
            Atom::new(x.sub(&LinTerm::constant(arity, hi)), CompOp::Le),
        )
    }

    /// The left-hand-side term.
    pub fn term(&self) -> &LinTerm {
        &self.term
    }

    /// The comparison operator.
    pub fn op(&self) -> CompOp {
        self.op
    }

    /// Number of variables.
    pub fn arity(&self) -> usize {
        self.term.arity()
    }

    /// Exact satisfaction test at a rational point.
    pub fn satisfied(&self, point: &[Rational]) -> bool {
        let v = self.term.eval(point);
        match self.op {
            CompOp::Lt => v.is_negative(),
            CompOp::Le => !v.is_positive(),
            CompOp::Eq => v.is_zero(),
            CompOp::Ge => !v.is_negative(),
            CompOp::Gt => v.is_positive(),
        }
    }

    /// Floating-point satisfaction test with tolerance (strictness is ignored
    /// because it is measure-irrelevant at the sampling layer).
    pub fn satisfied_f64(&self, point: &[f64], tol: f64) -> bool {
        let v = self.term.eval_f64(point);
        match self.op {
            CompOp::Lt | CompOp::Le => v <= tol,
            CompOp::Eq => v.abs() <= tol,
            CompOp::Ge | CompOp::Gt => v >= -tol,
        }
    }

    /// Normalizes the atom so the operator is `≤`, `<` or `=` (flipping the
    /// term for `≥` / `>`), with integer, gcd-reduced coefficients.
    pub fn normalized(&self) -> Atom {
        let (term, op) = match self.op {
            CompOp::Ge => (self.term.neg(), CompOp::Le),
            CompOp::Gt => (self.term.neg(), CompOp::Lt),
            op => (self.term.clone(), op),
        };
        Atom {
            term: term.normalized(),
            op,
        }
    }

    /// [`Atom::normalized`] plus an orientation fix for equality atoms:
    /// `t = 0` and `−t = 0` describe the same hyperplane, so the term of an
    /// equality is flipped until its leading non-zero coefficient is
    /// positive. The result is the unique representative of the atom's
    /// positive-scaling class, which is what the canonicalization pass
    /// (`crate::canonical`) keys on.
    pub fn canonicalized(&self) -> Atom {
        let n = self.normalized();
        match n.op {
            CompOp::Eq => Atom {
                term: n.term.sign_oriented(),
                op: CompOp::Eq,
            },
            _ => n,
        }
    }

    /// The closed halfspace `{x : term ≤ 0}` (strictness dropped), or `None`
    /// for equality atoms, which are not full-dimensional.
    ///
    /// The rational coefficients are converted to `f64` as they are (only the
    /// sign is flipped for `≥`/`>` atoms); no integer renormalization is
    /// applied, so dyadic bounds coming from [`Rational::from_f64`] keep their
    /// numeric scale instead of exploding into astronomically large integers.
    pub fn to_halfspace(&self) -> Option<Halfspace> {
        let term = match self.op {
            CompOp::Eq => return None,
            CompOp::Ge | CompOp::Gt => self.term.neg(),
            CompOp::Le | CompOp::Lt => self.term.clone(),
        };
        let coeffs: Vec<f64> = term.coeffs().iter().map(|c| c.to_f64()).collect();
        let offset = -term.constant_part().to_f64();
        Some(Halfspace::from_slice(&coeffs, offset))
    }

    /// Both halfspaces of an equality atom (`term ≤ 0` and `−term ≤ 0`).
    pub fn equality_halfspaces(&self) -> Option<(Halfspace, Halfspace)> {
        if self.op != CompOp::Eq {
            return None;
        }
        let a = Atom::new(self.term.clone(), CompOp::Le).to_halfspace()?;
        let b = Atom::new(self.term.neg(), CompOp::Le).to_halfspace()?;
        Some((a, b))
    }

    /// Remaps the atom's variables into a larger arity.
    pub fn remap(&self, new_arity: usize, mapping: &[usize]) -> Atom {
        Atom {
            term: self.term.remap(new_arity, mapping),
            op: self.op,
        }
    }

    /// Restricts the atom to the first `new_arity` variables (`None` when the
    /// atom mentions a dropped variable).
    pub fn restrict(&self, new_arity: usize) -> Option<Atom> {
        Some(Atom {
            term: self.term.restrict(new_arity)?,
            op: self.op,
        })
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.op {
            CompOp::Lt => "<",
            CompOp::Le => "<=",
            CompOp::Eq => "=",
            CompOp::Ge => ">=",
            CompOp::Gt => ">",
        };
        write!(f, "{} {op} 0", self.term)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rational {
        Rational::from_int(n)
    }

    #[test]
    fn satisfaction_exact_and_float() {
        // x - 1 <= 0, i.e. x <= 1.
        let a = Atom::le_from_ints(&[1], -1);
        assert!(a.satisfied(&[r(1)]));
        assert!(a.satisfied(&[r(0)]));
        assert!(!a.satisfied(&[r(2)]));
        assert!(a.satisfied_f64(&[0.999], 1e-9));
        assert!(!a.satisfied_f64(&[1.1], 1e-9));

        // Strictness matters for exact evaluation.
        let strict = Atom::new(LinTerm::from_ints(&[1], -1), CompOp::Lt);
        assert!(!strict.satisfied(&[r(1)]));
        assert!(strict.satisfied(&[Rational::from_ratio(999, 1000)]));

        let eq = Atom::new(LinTerm::from_ints(&[1, -1], 0), CompOp::Eq);
        assert!(eq.satisfied(&[r(2), r(2)]));
        assert!(!eq.satisfied(&[r(2), r(3)]));
    }

    #[test]
    fn negation_operator_table() {
        assert_eq!(CompOp::Le.negate(), CompOp::Gt);
        assert_eq!(CompOp::Lt.negate(), CompOp::Ge);
        assert_eq!(CompOp::Ge.negate(), CompOp::Lt);
        assert_eq!(CompOp::Gt.negate(), CompOp::Le);
        assert!(CompOp::Lt.is_strict());
        assert!(!CompOp::Le.is_strict());
    }

    #[test]
    fn normalization_flips_ge() {
        // x >= 2 normalizes to -(x - 2) = 2 - x ... stored as -x + 2 <= 0.
        let a = Atom::new(LinTerm::from_ints(&[1], -2), CompOp::Ge);
        let n = a.normalized();
        assert_eq!(n.op(), CompOp::Le);
        assert_eq!(n.term(), &LinTerm::from_ints(&[-1], 2));
        // Same satisfied set.
        for p in [[1.0], [2.0], [3.0]] {
            assert_eq!(a.satisfied_f64(&p, 1e-9), n.satisfied_f64(&p, 1e-9));
        }
    }

    #[test]
    fn halfspace_conversion() {
        // 2x + y - 4 <= 0 becomes the halfspace 2x + y <= 4.
        let a = Atom::le_from_ints(&[2, 1], -4);
        let h = a.to_halfspace().unwrap();
        assert_eq!(h.normal().as_slice(), &[2.0, 1.0]);
        assert_eq!(h.offset(), 4.0);
        // A >= atom flips.
        let g = Atom::new(LinTerm::from_ints(&[1, 0], 0), CompOp::Ge);
        let hg = g.to_halfspace().unwrap();
        assert_eq!(hg.normal().as_slice(), &[-1.0, 0.0]);
        // Equality has no single halfspace but a pair.
        let eq = Atom::new(LinTerm::from_ints(&[1, -1], 0), CompOp::Eq);
        assert!(eq.to_halfspace().is_none());
        let (h1, h2) = eq.equality_halfspaces().unwrap();
        assert_eq!(h1.normal().as_slice(), &[1.0, -1.0]);
        assert_eq!(h2.normal().as_slice(), &[-1.0, 1.0]);
    }

    #[test]
    fn bounds_helper() {
        let (lo, hi) = Atom::bounds(2, 1, r(0), r(3));
        assert!(lo.satisfied(&[r(100), r(0)]));
        assert!(!lo.satisfied(&[r(0), r(-1)]));
        assert!(hi.satisfied(&[r(0), r(3)]));
        assert!(!hi.satisfied(&[r(0), r(4)]));
    }

    #[test]
    fn display_format() {
        let a = Atom::le_from_ints(&[1, -1], 2);
        assert_eq!(a.to_string(), "1*x0 - 1*x1 + 2 <= 0");
    }
}
