//! Generalized tuples: conjunctions of linear atoms, i.e. convex polyhedra.

use cdb_geometry::HPolytope;
use cdb_lp::LpProblem;
use cdb_num::Rational;
use std::fmt;

use crate::atom::{Atom, CompOp};

/// A *generalized tuple* (Section 2 of the paper): a conjunction of atomic
/// linear constraints over `d` variables. Geometrically a convex polyhedron.
#[derive(Clone, Debug, PartialEq)]
pub struct GeneralizedTuple {
    arity: usize,
    atoms: Vec<Atom>,
}

impl GeneralizedTuple {
    /// Creates a tuple from its atoms (all of the given arity).
    pub fn new(arity: usize, atoms: Vec<Atom>) -> Self {
        for a in &atoms {
            assert_eq!(a.arity(), arity, "atom arity mismatch");
        }
        GeneralizedTuple { arity, atoms }
    }

    /// The tuple with no constraints (the whole space).
    pub fn whole_space(arity: usize) -> Self {
        GeneralizedTuple {
            arity,
            atoms: Vec::new(),
        }
    }

    /// A tuple describing the axis-aligned box `[lo_i, hi_i]`.
    pub fn from_box(lo: &[Rational], hi: &[Rational]) -> Self {
        assert_eq!(lo.len(), hi.len(), "box bounds arity mismatch");
        let arity = lo.len();
        let mut atoms = Vec::with_capacity(2 * arity);
        for i in 0..arity {
            let (a, b) = Atom::bounds(arity, i, lo[i].clone(), hi[i].clone());
            atoms.push(a);
            atoms.push(b);
        }
        GeneralizedTuple { arity, atoms }
    }

    /// A tuple describing the box `[lo_i, hi_i]` with floating-point bounds
    /// (converted exactly to dyadic rationals).
    pub fn from_box_f64(lo: &[f64], hi: &[f64]) -> Self {
        let lo_r: Vec<Rational> = lo
            .iter()
            .map(|&v| Rational::from_f64(v).expect("finite bound"))
            .collect();
        let hi_r: Vec<Rational> = hi
            .iter()
            .map(|&v| Rational::from_f64(v).expect("finite bound"))
            .collect();
        GeneralizedTuple::from_box(&lo_r, &hi_r)
    }

    /// Number of variables.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The atoms of the conjunction.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Number of atoms.
    pub fn n_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Description size: total number of symbols (coefficients) of the
    /// defining formula, the paper's complexity parameter.
    pub fn description_size(&self) -> usize {
        self.atoms.len() * (self.arity + 1)
    }

    /// Adds an atom to the conjunction.
    pub fn push(&mut self, atom: Atom) {
        assert_eq!(atom.arity(), self.arity, "atom arity mismatch");
        self.atoms.push(atom);
    }

    /// Conjunction with another tuple over the same variables.
    pub fn conjoin(&self, other: &GeneralizedTuple) -> GeneralizedTuple {
        assert_eq!(self.arity, other.arity, "tuple arity mismatch");
        let mut atoms = self.atoms.clone();
        atoms.extend(other.atoms.iter().cloned());
        GeneralizedTuple {
            arity: self.arity,
            atoms,
        }
    }

    /// Cartesian product with a tuple over disjoint variables: the result has
    /// arity `self.arity + other.arity`, with `other`'s variables shifted.
    pub fn product(&self, other: &GeneralizedTuple) -> GeneralizedTuple {
        let arity = self.arity + other.arity;
        let self_map: Vec<usize> = (0..self.arity).collect();
        let other_map: Vec<usize> = (self.arity..arity).collect();
        let mut atoms: Vec<Atom> = self
            .atoms
            .iter()
            .map(|a| a.remap(arity, &self_map))
            .collect();
        atoms.extend(other.atoms.iter().map(|a| a.remap(arity, &other_map)));
        GeneralizedTuple { arity, atoms }
    }

    /// Remaps every atom into a larger ambient arity.
    pub fn remap(&self, new_arity: usize, mapping: &[usize]) -> GeneralizedTuple {
        GeneralizedTuple {
            arity: new_arity,
            atoms: self
                .atoms
                .iter()
                .map(|a| a.remap(new_arity, mapping))
                .collect(),
        }
    }

    /// Exact membership test.
    pub fn satisfied(&self, point: &[Rational]) -> bool {
        self.atoms.iter().all(|a| a.satisfied(point))
    }

    /// Floating-point membership test.
    pub fn satisfied_f64(&self, point: &[f64], tol: f64) -> bool {
        self.atoms.iter().all(|a| a.satisfied_f64(point, tol))
    }

    /// The H-polytope of the tuple's *closure* (strict inequalities become
    /// non-strict; equalities contribute two opposite halfspaces). This is
    /// the geometric object handed to the samplers — the boundary has measure
    /// zero, so closure does not change volumes or sampling distributions.
    pub fn to_hpolytope(&self) -> HPolytope {
        let mut hs = Vec::with_capacity(self.atoms.len());
        for a in &self.atoms {
            match a.op() {
                CompOp::Eq => {
                    if let Some((h1, h2)) = a.equality_halfspaces() {
                        hs.push(h1);
                        hs.push(h2);
                    }
                }
                _ => {
                    if let Some(h) = a.to_halfspace() {
                        hs.push(h);
                    }
                }
            }
        }
        HPolytope::new(self.arity, hs)
    }

    /// Exact emptiness test of the tuple's closure, using the rational
    /// simplex. (A tuple whose closure is empty is certainly empty; a tuple
    /// that is non-empty only on a measure-zero set is treated as non-empty
    /// here and filtered out later by full-dimensionality checks.)
    pub fn closure_is_empty(&self) -> bool {
        let mut lp: LpProblem<Rational> = LpProblem::new(self.arity);
        for a in &self.atoms {
            let n = a.normalized();
            let coeffs: Vec<Rational> = n.term().coeffs().to_vec();
            let rhs = -n.term().constant_part().clone();
            match n.op() {
                CompOp::Eq => lp.add_eq(coeffs, rhs),
                _ => lp.add_le(coeffs, rhs),
            }
        }
        lp.feasible_point().is_none()
    }

    /// Returns `true` when the tuple's closure is non-empty and bounded with
    /// non-empty interior — the *well-bounded convex relation* requirement of
    /// the paper (needed by the Dyer–Frieze–Kannan generator).
    pub fn is_well_bounded(&self) -> bool {
        self.to_hpolytope().well_bounded().is_some()
    }
}

impl fmt::Display for GeneralizedTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "true");
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " and ")?;
            }
            write!(f, "({a})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::LinTerm;

    fn r(n: i64) -> Rational {
        Rational::from_int(n)
    }

    fn unit_square() -> GeneralizedTuple {
        GeneralizedTuple::from_box(&[r(0), r(0)], &[r(1), r(1)])
    }

    #[test]
    fn box_membership() {
        let sq = unit_square();
        assert_eq!(sq.arity(), 2);
        assert_eq!(sq.n_atoms(), 4);
        assert!(sq.satisfied(&[Rational::from_ratio(1, 2), Rational::from_ratio(1, 3)]));
        assert!(!sq.satisfied(&[r(2), r(0)]));
        assert!(sq.satisfied_f64(&[0.5, 0.5], 1e-9));
        assert!(!sq.satisfied_f64(&[1.5, 0.5], 1e-9));
        assert!(sq.description_size() > 0);
    }

    #[test]
    fn conjunction_and_emptiness() {
        let sq = unit_square();
        let shifted = GeneralizedTuple::from_box(&[r(2), r(2)], &[r(3), r(3)]);
        let empty = sq.conjoin(&shifted);
        assert!(empty.closure_is_empty());
        let overlapping = GeneralizedTuple::from_box(&[r(0), r(0)], &[r(2), r(2)]);
        assert!(!sq.conjoin(&overlapping).closure_is_empty());
    }

    #[test]
    fn polytope_conversion_matches_membership() {
        let sq = unit_square();
        let p = sq.to_hpolytope();
        for probe in [[0.5, 0.5], [-0.1, 0.5], [0.5, 1.1], [1.0, 1.0]] {
            assert_eq!(
                p.contains_slice(&probe, 1e-9),
                sq.satisfied_f64(&probe, 1e-9),
                "{probe:?}"
            );
        }
        assert!(sq.is_well_bounded());
        let whole = GeneralizedTuple::whole_space(2);
        assert!(!whole.is_well_bounded());
    }

    #[test]
    fn equalities_become_halfspace_pairs() {
        // x = y within the unit square: a diagonal segment, closure non-empty
        // but not well-bounded (no interior).
        let mut t = unit_square();
        t.push(Atom::new(LinTerm::from_ints(&[1, -1], 0), CompOp::Eq));
        assert!(!t.closure_is_empty());
        assert!(!t.is_well_bounded());
        assert!(t.satisfied(&[Rational::from_ratio(1, 2), Rational::from_ratio(1, 2)]));
        assert!(!t.satisfied(&[Rational::from_ratio(1, 2), Rational::from_ratio(1, 3)]));
        let p = t.to_hpolytope();
        assert_eq!(p.n_constraints(), 6);
    }

    #[test]
    fn product_spans_disjoint_variables() {
        let a = GeneralizedTuple::from_box(&[r(0)], &[r(1)]);
        let b = GeneralizedTuple::from_box(&[r(10)], &[r(11)]);
        let prod = a.product(&b);
        assert_eq!(prod.arity(), 2);
        assert!(prod.satisfied_f64(&[0.5, 10.5], 1e-9));
        assert!(!prod.satisfied_f64(&[0.5, 9.0], 1e-9));
        assert!(!prod.satisfied_f64(&[2.0, 10.5], 1e-9));
    }

    #[test]
    fn remap_into_larger_space() {
        let a = GeneralizedTuple::from_box(&[r(0)], &[r(1)]);
        let lifted = a.remap(3, &[2]);
        assert_eq!(lifted.arity(), 3);
        assert!(lifted.satisfied_f64(&[99.0, -99.0, 0.5], 1e-9));
        assert!(!lifted.satisfied_f64(&[0.5, 0.5, 2.0], 1e-9));
    }

    #[test]
    fn strict_inequalities_respected_exactly() {
        // 0 < x < 1 strictly.
        let atoms = vec![
            Atom::new(LinTerm::from_ints(&[-1], 0), CompOp::Lt),
            Atom::new(LinTerm::from_ints(&[1], -1), CompOp::Lt),
        ];
        let t = GeneralizedTuple::new(1, atoms);
        assert!(t.satisfied(&[Rational::from_ratio(1, 2)]));
        assert!(!t.satisfied(&[r(0)]));
        assert!(!t.satisfied(&[r(1)]));
        // The closure is still non-empty and the polytope is the closed interval.
        assert!(!t.closure_is_empty());
        assert!(t.to_hpolytope().contains_slice(&[0.0], 1e-9));
    }
}
