//! Linear terms `Σ a_i x_i + c` with exact rational coefficients.

use cdb_num::Rational;
use std::fmt;

/// A linear term over the variables `x_0, …, x_{arity−1}` with exact rational
/// coefficients: `coeffs·x + constant`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct LinTerm {
    coeffs: Vec<Rational>,
    constant: Rational,
}

impl LinTerm {
    /// The zero term in the given arity.
    pub fn zero(arity: usize) -> Self {
        LinTerm {
            coeffs: vec![Rational::zero(); arity],
            constant: Rational::zero(),
        }
    }

    /// The constant term `c`.
    pub fn constant(arity: usize, c: Rational) -> Self {
        LinTerm {
            coeffs: vec![Rational::zero(); arity],
            constant: c,
        }
    }

    /// The single variable `x_i`.
    pub fn var(arity: usize, i: usize) -> Self {
        assert!(i < arity, "variable index out of range");
        let mut coeffs = vec![Rational::zero(); arity];
        coeffs[i] = Rational::one();
        LinTerm {
            coeffs,
            constant: Rational::zero(),
        }
    }

    /// Builds a term from explicit coefficients and constant.
    pub fn new(coeffs: Vec<Rational>, constant: Rational) -> Self {
        LinTerm { coeffs, constant }
    }

    /// Builds a term from integer coefficients and constant (convenience).
    pub fn from_ints(coeffs: &[i64], constant: i64) -> Self {
        LinTerm {
            coeffs: coeffs.iter().map(|&c| Rational::from_int(c)).collect(),
            constant: Rational::from_int(constant),
        }
    }

    /// Number of variables the term ranges over.
    pub fn arity(&self) -> usize {
        self.coeffs.len()
    }

    /// Coefficient of `x_i`.
    pub fn coeff(&self, i: usize) -> &Rational {
        &self.coeffs[i]
    }

    /// All coefficients.
    pub fn coeffs(&self) -> &[Rational] {
        &self.coeffs
    }

    /// The constant part.
    pub fn constant_part(&self) -> &Rational {
        &self.constant
    }

    /// Returns `true` when every coefficient is zero (the term is constant).
    pub fn is_constant(&self) -> bool {
        self.coeffs.iter().all(|c| c.is_zero())
    }

    /// Sum of two terms of the same arity.
    pub fn add(&self, other: &LinTerm) -> LinTerm {
        assert_eq!(self.arity(), other.arity(), "term arity mismatch");
        LinTerm {
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(a, b)| a + b)
                .collect(),
            constant: &self.constant + &other.constant,
        }
    }

    /// Difference of two terms.
    pub fn sub(&self, other: &LinTerm) -> LinTerm {
        self.add(&other.scale(&Rational::from_int(-1)))
    }

    /// Scales the term by a rational factor.
    pub fn scale(&self, factor: &Rational) -> LinTerm {
        LinTerm {
            coeffs: self.coeffs.iter().map(|c| c * factor).collect(),
            constant: &self.constant * factor,
        }
    }

    /// Negation.
    pub fn neg(&self) -> LinTerm {
        self.scale(&Rational::from_int(-1))
    }

    /// Exact evaluation at a rational point.
    pub fn eval(&self, point: &[Rational]) -> Rational {
        assert_eq!(point.len(), self.arity(), "evaluation point arity mismatch");
        let mut acc = self.constant.clone();
        for (c, x) in self.coeffs.iter().zip(point) {
            if !c.is_zero() {
                acc += &(c * x);
            }
        }
        acc
    }

    /// Floating-point evaluation.
    pub fn eval_f64(&self, point: &[f64]) -> f64 {
        assert_eq!(point.len(), self.arity(), "evaluation point arity mismatch");
        let mut acc = self.constant.to_f64();
        for (c, x) in self.coeffs.iter().zip(point) {
            acc += c.to_f64() * x;
        }
        acc
    }

    /// Substitutes `x_i := replacement` (a term of the same arity whose own
    /// coefficient on `x_i` must be zero) and returns the resulting term.
    pub fn substitute(&self, i: usize, replacement: &LinTerm) -> LinTerm {
        assert!(
            replacement.coeff(i).is_zero(),
            "substitution must eliminate the variable"
        );
        let ci = self.coeffs[i].clone();
        if ci.is_zero() {
            return self.clone();
        }
        let mut without = self.clone();
        without.coeffs[i] = Rational::zero();
        without.add(&replacement.scale(&ci))
    }

    /// Extends the term to a larger arity, mapping variable `i` to
    /// `mapping[i]` in the new space.
    pub fn remap(&self, new_arity: usize, mapping: &[usize]) -> LinTerm {
        assert_eq!(mapping.len(), self.arity(), "mapping length mismatch");
        let mut coeffs = vec![Rational::zero(); new_arity];
        for (i, c) in self.coeffs.iter().enumerate() {
            if !c.is_zero() {
                let target = mapping[i];
                assert!(target < new_arity, "mapping target out of range");
                coeffs[target] = &coeffs[target] + c;
            }
        }
        LinTerm {
            coeffs,
            constant: self.constant.clone(),
        }
    }

    /// Restricts the term to the first `new_arity` variables. Returns `None`
    /// when the term has a non-zero coefficient on a dropped variable.
    pub fn restrict(&self, new_arity: usize) -> Option<LinTerm> {
        if self.coeffs[new_arity.min(self.arity())..]
            .iter()
            .any(|c| !c.is_zero())
        {
            return None;
        }
        let mut coeffs = self.coeffs[..new_arity.min(self.arity())].to_vec();
        coeffs.resize(new_arity, Rational::zero());
        Some(LinTerm {
            coeffs,
            constant: self.constant.clone(),
        })
    }

    /// Normalizes the term by clearing denominators and dividing by the gcd
    /// of the integer coefficients, preserving the sign. The zero set and the
    /// sign of the term at every point are unchanged.
    pub fn normalized(&self) -> LinTerm {
        use cdb_num::{BigInt, BigUint};
        // Common denominator.
        let mut den = BigUint::one();
        for c in self.coeffs.iter().chain(std::iter::once(&self.constant)) {
            den = cdb_num::lcm(&den, c.denom().magnitude());
        }
        let den_r = Rational::from(BigInt::from(den));
        let scaled = self.scale(&den_r);
        // Gcd of numerators.
        let mut g = BigUint::zero();
        for c in scaled
            .coeffs
            .iter()
            .chain(std::iter::once(&scaled.constant))
        {
            g = cdb_num::gcd(&g, c.numer().magnitude());
        }
        if g.is_zero() || g.is_one() {
            return scaled;
        }
        let g_r = Rational::new(BigInt::one(), BigInt::from(g));
        scaled.scale(&g_r)
    }

    /// Flips the term's sign so its leading entry — the first non-zero
    /// coefficient, or the constant when the term is constant — is positive.
    /// `t` and `−t` have the same zero set, so equality atoms canonicalize
    /// through this orientation (see [`crate::canonical`]).
    pub fn sign_oriented(&self) -> LinTerm {
        let leading = self
            .coeffs
            .iter()
            .chain(std::iter::once(&self.constant))
            .find(|c| !c.is_zero());
        match leading {
            Some(c) if c.is_negative() => self.neg(),
            _ => self.clone(),
        }
    }
}

impl fmt::Display for LinTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (i, c) in self.coeffs.iter().enumerate() {
            if c.is_zero() {
                continue;
            }
            if first {
                write!(f, "{c}*x{i}")?;
                first = false;
            } else if c.is_negative() {
                write!(f, " - {}*x{i}", c.abs())?;
            } else {
                write!(f, " + {c}*x{i}")?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if !self.constant.is_zero() {
            if self.constant.is_negative() {
                write!(f, " - {}", self.constant.abs())?;
            } else {
                write!(f, " + {}", self.constant)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    #[test]
    fn construction_and_evaluation() {
        let t = LinTerm::from_ints(&[2, -3], 1); // 2x - 3y + 1
        assert_eq!(t.eval(&[r(1, 1), r(1, 1)]), r(0, 1));
        assert_eq!(t.eval(&[r(1, 2), r(0, 1)]), r(2, 1));
        assert!((t.eval_f64(&[0.5, 0.0]) - 2.0).abs() < 1e-12);
        assert_eq!(t.arity(), 2);
        assert!(!t.is_constant());
        assert!(LinTerm::constant(3, r(5, 1)).is_constant());
    }

    #[test]
    fn arithmetic() {
        let a = LinTerm::from_ints(&[1, 2], 3);
        let b = LinTerm::from_ints(&[-1, 1], 1);
        assert_eq!(a.add(&b), LinTerm::from_ints(&[0, 3], 4));
        assert_eq!(a.sub(&b), LinTerm::from_ints(&[2, 1], 2));
        assert_eq!(a.neg(), LinTerm::from_ints(&[-1, -2], -3));
        assert_eq!(
            a.scale(&r(1, 2)),
            LinTerm::new(vec![r(1, 2), r(1, 1)], r(3, 2))
        );
    }

    #[test]
    fn substitution_eliminates_variable() {
        // t = 2x + y + 1; substitute x := 3y - 2  -> 7y - 3.
        let t = LinTerm::from_ints(&[2, 1], 1);
        let replacement = LinTerm::from_ints(&[0, 3], -2);
        let s = t.substitute(0, &replacement);
        assert_eq!(s, LinTerm::from_ints(&[0, 7], -3));
        // Substituting into a term that does not mention x is a no-op.
        let u = LinTerm::from_ints(&[0, 5], 2);
        assert_eq!(u.substitute(0, &replacement), u);
    }

    #[test]
    fn remapping_into_larger_arity() {
        let t = LinTerm::from_ints(&[1, 2], 5);
        let r = t.remap(4, &[3, 1]);
        assert_eq!(r.arity(), 4);
        assert_eq!(r.coeff(3), &Rational::from_int(1));
        assert_eq!(r.coeff(1), &Rational::from_int(2));
        assert_eq!(r.coeff(0), &Rational::zero());
        assert_eq!(r.constant_part(), &Rational::from_int(5));
    }

    #[test]
    fn normalization_clears_denominators() {
        let t = LinTerm::new(vec![r(1, 2), r(3, 4)], r(-5, 4));
        let n = t.normalized();
        assert_eq!(n, LinTerm::from_ints(&[2, 3], -5));
        // Sign at sample points is preserved.
        for p in [[0.0, 0.0], [1.0, 1.0], [2.0, -1.0]] {
            assert_eq!(t.eval_f64(&p) > 0.0, n.eval_f64(&p) > 0.0);
        }
        let g = LinTerm::from_ints(&[4, 8], 12).normalized();
        assert_eq!(g, LinTerm::from_ints(&[1, 2], 3));
        assert_eq!(LinTerm::zero(2).normalized(), LinTerm::zero(2));
    }

    #[test]
    fn display_is_readable() {
        let t = LinTerm::from_ints(&[1, -2], 3);
        assert_eq!(t.to_string(), "1*x0 - 2*x1 + 3");
        assert_eq!(LinTerm::constant(2, r(-1, 2)).to_string(), "-1/2");
    }
}
