//! Schemas, database instances and FO+LIN query evaluation.

use std::collections::BTreeMap;

use crate::formula::Formula;
use crate::relation::GeneralizedRelation;
use crate::ConstraintError;

/// A relational database schema: relation names with their arities.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schema {
    relations: BTreeMap<String, usize>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Adds (or overwrites) a relation name with its arity.
    pub fn add_relation(&mut self, name: impl Into<String>, arity: usize) -> &mut Self {
        self.relations.insert(name.into(), arity);
        self
    }

    /// The arity of a relation, if declared.
    pub fn arity_of(&self, name: &str) -> Option<usize> {
        self.relations.get(name).copied()
    }

    /// Iterates over the declared relations.
    pub fn relations(&self) -> impl Iterator<Item = (&str, usize)> {
        self.relations.iter().map(|(n, &a)| (n.as_str(), a))
    }

    /// Number of declared relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Returns `true` when no relation is declared.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

/// A finitely representable database instance: one generalized relation per
/// schema name.
#[derive(Clone, Debug, Default)]
pub struct Database {
    schema: Schema,
    instances: BTreeMap<String, GeneralizedRelation>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Inserts a relation instance, declaring it in the schema.
    pub fn insert(&mut self, name: impl Into<String>, relation: GeneralizedRelation) -> &mut Self {
        let name = name.into();
        self.schema.add_relation(name.clone(), relation.arity());
        self.instances.insert(name, relation);
        self
    }

    /// The schema of the database.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Looks up a relation instance.
    pub fn relation(&self, name: &str) -> Option<&GeneralizedRelation> {
        self.instances.get(name)
    }

    /// Total description size of the instance.
    pub fn description_size(&self) -> usize {
        self.instances.values().map(|r| r.description_size()).sum()
    }

    /// Replaces every relation atom `R(x_{i_1}, …, x_{i_k})` of a query
    /// formula by the stored definition of `R`, remapped onto the listed
    /// variables. The result is a relation-free formula.
    pub fn resolve(&self, query: &Formula) -> Result<Formula, ConstraintError> {
        match query {
            Formula::True | Formula::False | Formula::Atom(_) => Ok(query.clone()),
            Formula::Rel(name, vars) => {
                let rel = self
                    .instances
                    .get(name)
                    .ok_or_else(|| ConstraintError::UnknownRelation(name.clone()))?;
                if rel.arity() != vars.len() {
                    return Err(ConstraintError::ArityMismatch {
                        relation: name.clone(),
                        expected: rel.arity(),
                        found: vars.len(),
                    });
                }
                let ambient = vars.iter().map(|v| v + 1).max().unwrap_or(0);
                let disjuncts = rel
                    .tuples()
                    .iter()
                    .map(|t| {
                        Formula::and(
                            t.atoms()
                                .iter()
                                .map(|a| Formula::Atom(a.remap(ambient, vars)))
                                .collect(),
                        )
                    })
                    .collect();
                Ok(Formula::or(disjuncts))
            }
            Formula::And(fs) => Ok(Formula::and(
                fs.iter()
                    .map(|f| self.resolve(f))
                    .collect::<Result<Vec<_>, _>>()?,
            )),
            Formula::Or(fs) => Ok(Formula::or(
                fs.iter()
                    .map(|f| self.resolve(f))
                    .collect::<Result<Vec<_>, _>>()?,
            )),
            Formula::Not(f) => Ok(Formula::not(self.resolve(f)?)),
            Formula::Exists(vars, f) => Ok(Formula::exists(vars.clone(), self.resolve(f)?)),
        }
    }

    /// Evaluates an FO+LIN query whose free variables are `x_0, …,
    /// x_{output_arity−1}` (quantified variables must use indices at or above
    /// `output_arity`), returning the result as a generalized relation.
    ///
    /// This is the fully symbolic evaluation path (resolution + Fourier–
    /// Motzkin + DNF) — the baseline whose cost the paper's approximate
    /// evaluation avoids.
    pub fn evaluate(
        &self,
        query: &Formula,
        output_arity: usize,
    ) -> Result<GeneralizedRelation, ConstraintError> {
        let resolved = self.resolve(query)?;
        GeneralizedRelation::from_formula(output_arity, &resolved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::tuple::GeneralizedTuple;

    fn sample_db() -> Database {
        let mut db = Database::new();
        // R = [0,2] x [0,1], S = [1,3] x [0,1] (2-dimensional strips).
        db.insert(
            "R",
            GeneralizedRelation::from_box_f64(&[0.0, 0.0], &[2.0, 1.0]),
        );
        db.insert(
            "S",
            GeneralizedRelation::from_box_f64(&[1.0, 0.0], &[3.0, 1.0]),
        );
        // Line = the 1-dimensional interval [0, 10].
        db.insert("Line", GeneralizedRelation::from_box_f64(&[0.0], &[10.0]));
        db
    }

    #[test]
    fn schema_bookkeeping() {
        let db = sample_db();
        assert_eq!(db.schema().arity_of("R"), Some(2));
        assert_eq!(db.schema().arity_of("Line"), Some(1));
        assert_eq!(db.schema().arity_of("Missing"), None);
        assert_eq!(db.schema().len(), 3);
        assert!(!db.schema().is_empty());
        assert!(db.description_size() > 0);
        assert!(db.relation("R").is_some());
        assert!(db.relation("Missing").is_none());
    }

    #[test]
    fn conjunction_query() {
        let db = sample_db();
        // Q(x, y) = R(x, y) and S(x, y)  — the strip overlap [1,2] x [0,1].
        let q = Formula::and(vec![
            Formula::rel("R", vec![0, 1]),
            Formula::rel("S", vec![0, 1]),
        ]);
        let out = db.evaluate(&q, 2).unwrap();
        assert!(out.contains_f64(&[1.5, 0.5]));
        assert!(!out.contains_f64(&[0.5, 0.5]));
        assert!(!out.contains_f64(&[2.5, 0.5]));
    }

    #[test]
    fn join_style_query_with_quantifier() {
        let db = sample_db();
        // Q(x, y) = exists z. R(x, z) and S(z, y)
        // R(x,z): x in [0,2], z in [0,1]; S(z,y): z in [1,3], y in [0,1].
        // The shared z must be in [1,1] -> feasible, so Q = [0,2] x [0,1].
        let q = Formula::exists(
            vec![2],
            Formula::and(vec![
                Formula::rel("R", vec![0, 2]),
                Formula::rel("S", vec![2, 1]),
            ]),
        );
        let out = db.evaluate(&q, 2).unwrap();
        assert!(out.contains_f64(&[1.0, 0.5]));
        assert!(out.contains_f64(&[0.1, 0.9]));
        assert!(!out.contains_f64(&[2.5, 0.5]));
        assert!(!out.contains_f64(&[1.0, 1.5]));
    }

    #[test]
    fn union_and_negation_query() {
        let db = sample_db();
        // Q(x, y) = R(x, y) and not S(x, y)  — the part of R left of x = 1.
        let q = Formula::and(vec![
            Formula::rel("R", vec![0, 1]),
            Formula::not(Formula::rel("S", vec![0, 1])),
        ]);
        let out = db.evaluate(&q, 2).unwrap();
        assert!(out.contains_f64(&[0.5, 0.5]));
        assert!(!out.contains_f64(&[1.5, 0.5]));
    }

    #[test]
    fn variable_permutation_in_relation_atoms() {
        let db = sample_db();
        // Q(x, y) = R(y, x): swaps the roles of the coordinates.
        let q = Formula::rel("R", vec![1, 0]);
        let out = db.evaluate(&q, 2).unwrap();
        // R = [0,2] x [0,1], so R(y,x) holds iff y in [0,2] and x in [0,1].
        assert!(out.contains_f64(&[0.5, 1.8]));
        assert!(!out.contains_f64(&[1.8, 0.5]));
    }

    #[test]
    fn error_cases() {
        let db = sample_db();
        let unknown = Formula::rel("Missing", vec![0]);
        assert!(matches!(
            db.evaluate(&unknown, 1),
            Err(ConstraintError::UnknownRelation(_))
        ));
        let wrong_arity = Formula::rel("R", vec![0]);
        assert!(matches!(
            db.evaluate(&wrong_arity, 1),
            Err(ConstraintError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn query_mixing_relations_and_linear_atoms() {
        let db = sample_db();
        // Q(x) = exists y. R(x, y) and x >= 1  -> x in [1, 2].
        let q = Formula::exists(
            vec![1],
            Formula::and(vec![
                Formula::rel("R", vec![0, 1]),
                Formula::Atom(Atom::new(
                    crate::term::LinTerm::from_ints(&[-1, 0], 1),
                    crate::atom::CompOp::Le,
                )),
            ]),
        );
        let out = db.evaluate(&q, 1).unwrap();
        assert!(out.contains_f64(&[1.5]));
        assert!(!out.contains_f64(&[0.5]));
        assert!(!out.contains_f64(&[2.5]));
    }

    #[test]
    fn multi_tuple_instances_resolve_to_unions() {
        let mut db = Database::new();
        let two_boxes = GeneralizedRelation::from_tuples(
            1,
            vec![
                GeneralizedTuple::from_box_f64(&[0.0], &[1.0]),
                GeneralizedTuple::from_box_f64(&[5.0], &[6.0]),
            ],
        );
        db.insert("U", two_boxes);
        let q = Formula::rel("U", vec![0]);
        let out = db.evaluate(&q, 1).unwrap();
        assert_eq!(out.tuples().len(), 2);
        assert!(out.contains_f64(&[0.5]));
        assert!(out.contains_f64(&[5.5]));
        assert!(!out.contains_f64(&[3.0]));
    }
}
